"""The cluster MP-Cache tier: NodeCache mechanics, exact accounting,
cluster/switching/autoscale integration."""

import pytest

from repro.analysis.sharding import greedy_shard
from repro.core.mp_cache import row_entry_bytes, zipf_popularity_cdf
from repro.core.online import StaticScheduler
from repro.core.switching import SwitchController
from repro.data.queries import Query, QuerySet
from repro.hardware.catalog import GPU_V100
from repro.hardware.topology import ETHERNET_25G
from repro.serving.autoscale import AutoscaleController
from repro.serving.cache import CacheConfig, NodeCache
from repro.serving.cluster import ClusterSimulator, ShardMap
from repro.serving.workload import ServingScenario

from tests.unit.test_online import fake_path

DIM = 16
ROW = DIM * 4


def config(capacity_bytes=100 * row_entry_bytes(DIM), policy="lru", alpha=1.05):
    return CacheConfig(
        capacity_bytes=capacity_bytes, embedding_dim=DIM,
        alpha=alpha, policy=policy,
    )


def cache(n_groups=2, hot_rows=1000, **kwargs) -> NodeCache:
    return config(**kwargs).build(n_groups=n_groups, hot_rows=hot_rows)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="capacity_bytes"):
            config(capacity_bytes=0)
        with pytest.raises(ValueError, match="policy"):
            config(policy="fifo")
        with pytest.raises(ValueError, match="alpha"):
            config(alpha=-1.0)

    def test_sizing_matches_single_node_tier(self):
        cfg = config(capacity_bytes=1000)
        assert cfg.entry_bytes == row_entry_bytes(DIM)
        assert cfg.capacity_entries == 1000 // (DIM * 4 + 8)
        assert cfg.row_bytes == ROW

    def test_popularity_cdf_shape(self):
        cdf = zipf_popularity_cdf(100, alpha=1.05)
        assert cdf[0] == 0.0
        assert cdf[-1] == 1.0
        assert all(cdf[k] < cdf[k + 1] for k in range(100))


class TestLookup:
    def test_cold_cache_misses_everything(self):
        c = cache()
        hits, misses = c.lookup("P", 0, 10)
        assert (hits, misses) == (0, 10)
        assert c.stats.lookups == 10
        assert c.stats.fill_bytes == 10 * ROW

    def test_counters_always_sum_exactly(self):
        c = cache()
        for i in range(200):
            c.lookup("P", i % 2, 7)
        assert c.stats.hits + c.stats.misses == c.stats.lookups == 1400
        assert c.stats.fill_bytes == c.stats.misses * ROW
        assert c.stats.hit_bytes == c.stats.hits * ROW

    def test_lru_residency_grows_toward_the_hot_head(self):
        c = cache(n_groups=1)
        rate0 = c.hit_rate("P", 0)
        c.lookup("P", 0, 50)
        assert rate0 == 0.0 < c.hit_rate("P", 0)

    def test_carry_exact_split_tracks_the_analytic_rate(self):
        c = cache(n_groups=1, hot_rows=100)
        c.warm("P")  # full residency of the per-group quota
        rate = c.hit_rate("P", 0)
        n_lookups = 500
        before = c.stats.hits
        for _ in range(n_lookups):
            c.lookup("P", 0, 3)
        observed = (c.stats.hits - before) / (n_lookups * 3)
        # Residency keeps growing under LRU fills, so observed >= the
        # warm-time rate; the carry keeps it within one row of analytic.
        assert observed >= rate - 1.0 / (n_lookups * 3)

    def test_static_policy_never_fills_on_miss(self):
        c = cache(policy="static")
        c.lookup("P", 0, 50)
        assert c.resident_entries == 0
        assert c.hit_rate("P", 0) == 0.0
        # ...but the misses were still fetched (and priced) over the wire.
        assert c.stats.fill_bytes == 50 * ROW

    def test_batch_preview_is_sequential_and_commit_applies_it_verbatim(self):
        # Two lookups of the same cold group in one batch: the second
        # must see the residency the first's misses filled (a fresh
        # cache still yields hits within the batch), and the committed
        # counters must equal the previewed splits exactly — that
        # equality is what keeps priced service time and recorded stats
        # in lockstep.
        c = cache(n_groups=1, hot_rows=100)
        items = [("P", 0, 40), ("P", 0, 40)]
        splits, overlay = c.preview_batch(items)
        assert splits[0] == (0, 40)  # cold
        assert splits[1][0] > 0  # warmed by the first item's fills
        # Pure: previewing again from unchanged state gives the same answer.
        assert c.preview_batch(items)[0] == splits
        c.commit_batch(items, splits, overlay)
        assert c.stats.hits == sum(h for h, _ in splits)
        assert c.stats.misses == sum(m for _, m in splits)
        assert c.stats.lookups == 80

    def test_preview_is_pure_and_matches_lookup(self):
        c = cache(n_groups=1, hot_rows=100)
        c.warm("P")
        for rows in (3, 7, 1, 12):
            expected = c.preview("P", 0, rows)
            assert c.preview("P", 0, rows) == expected  # no state advanced
            assert c.lookup("P", 0, rows) == expected


class TestCapacity:
    def test_eviction_respects_the_byte_budget(self):
        c = cache(n_groups=2, hot_rows=1000)
        cap = c.config.capacity_entries
        c.lookup("P", 0, cap)
        c.lookup("P", 1, cap)
        assert c.resident_entries <= cap

    def test_least_recently_used_group_is_evicted_first(self):
        c = cache(n_groups=2, hot_rows=1000)
        cap = c.config.capacity_entries
        c.lookup("P", 0, cap)  # fills group 0 to capacity
        c.lookup("P", 1, cap)  # group 1 demand-fills; 0 is the LRU victim
        state = c._labels["P"]
        assert state.resident[1] > 0
        assert state.resident[0] < cap

    def test_warm_respects_even_share_and_reports_bytes(self):
        c = cache(n_groups=2, hot_rows=1000)
        warmed = c.warm("P")
        assert warmed == (c.config.capacity_entries // 2 * 2) * ROW
        assert c.stats.warm_bytes == warmed

    def test_receive_never_evicts_earned_rows(self):
        c = cache(n_groups=2, hot_rows=1000)
        cap = c.config.capacity_entries
        c.lookup("P", 0, cap)  # full
        received = c.receive("P", 50, [1])
        assert received == 0
        assert c.resident_entries == cap


class TestInvalidation:
    def test_rewarm_moves_entries_to_the_new_label(self):
        c = cache(n_groups=2, hot_rows=1000)
        c.lookup("OLD", 0, 30)
        c.lookup("OLD", 1, 20)
        moved = c.rewarm("OLD", "NEW")
        assert moved == 50 * ROW
        assert c.stats.rewarm_bytes == moved
        assert c.stats.invalidated_entries == 50
        assert c.hit_rate("OLD", 0) == 0.0
        assert c.hit_rate("NEW", 0) > 0.0

    def test_rewarm_of_unknown_label_is_free(self):
        c = cache()
        assert c.rewarm("GHOST", "NEW") == 0

    def test_rekey_drops_everything_and_resizes(self):
        c = cache(n_groups=2, hot_rows=1000)
        c.lookup("P", 0, 40)
        dropped = c.rekey(3, 600)
        assert dropped == 40
        assert c.n_groups == 3
        assert c.resident_entries == 0
        assert c.stats.invalidations == 1

    def test_donate_empties_and_reports(self):
        c = cache(n_groups=2, hot_rows=1000)
        c.lookup("P", 0, 25)
        assert c.donate() == 25
        assert c.resident_entries == 0


def _path():
    return fake_path("table", GPU_V100, 79.0, 0.0002, per_sample=2e-6,
                     label="TBL")


def _scenario(n=400, gap=0.0005, size=32, user=None, sla_s=0.050):
    queries = [
        Query(index=i, size=size, arrival_s=i * gap,
              user=-1 if user is None else user)
        for i in range(n)
    ]
    return ServingScenario(queries=QuerySet(queries=queries), sla_s=sla_s)


def _cluster(n_nodes=2, cache_bytes=1 << 20, router="round-robin", **kwargs):
    plan = greedy_shard([50_000, 40_000, 30_000, 20_000], DIM, n_nodes)
    return ClusterSimulator(
        StaticScheduler([_path()]), plan, router=router, link=ETHERNET_25G,
        track_energy=False, cache_bytes=cache_bytes, **kwargs,
    )


class TestClusterIntegration:
    def test_validation(self):
        plan = greedy_shard([1000], DIM, 2)
        with pytest.raises(ValueError, match="non-negative"):
            ClusterSimulator(StaticScheduler([_path()]), plan, cache_bytes=-1)
        with pytest.raises(ValueError, match="cache-affinity"):
            ClusterSimulator(
                StaticScheduler([_path()]), plan, router="cache-affinity"
            )
        with pytest.raises(ValueError, match="cache_hot_rows"):
            ClusterSimulator(
                StaticScheduler([_path()]), plan, cache_bytes=1 << 20,
                cache_hot_rows=0,
            )

    def test_cache_off_reports_no_cache(self):
        result = _cluster(cache_bytes=0).run(_scenario(50))
        assert result.cache is None
        assert "cache_hits" not in result.summary()

    def test_accounting_identities_hold(self):
        # One user keys one group: round-robin sends half the traffic to
        # the non-owner, which serves its hot rows through the cache.
        result = _cluster().run(_scenario(user=7))
        c = result.cache
        assert c.hits + c.misses == c.lookups > 0
        assert c.fill_bytes == c.misses * ROW
        assert c.hit_bytes == c.hits * ROW
        assert "cache_hit_rate" in result.summary()

    def test_single_node_cluster_cache_sits_idle(self):
        # One node owns every group: the tier has nothing to cache, and
        # the run matches the uncached single-node record stream exactly.
        cached = _cluster(n_nodes=1).run(_scenario(100))
        plain = _cluster(n_nodes=1, cache_bytes=0).run(_scenario(100))
        assert cached.cache.lookups == 0
        assert cached.result.records == plain.result.records

    def test_warm_cache_speeds_up_repeat_traffic(self):
        # All queries from one user -> one hot group; the cached fleet
        # stops paying the hot fetch once residency builds.
        cached = _cluster().run(_scenario(user=7))
        cold = _cluster(cache_bytes=0).run(_scenario(user=7))
        assert cached.cache.hit_rate > 0.5
        assert cached.result.makespan_s <= cold.result.makespan_s
        total = sum(r.latency_s for r in cached.result.records)
        total_cold = sum(r.latency_s for r in cold.result.records)
        assert total < total_cold

    def test_shed_repricing_does_not_double_count(self):
        # Overload with a shed policy: pricing runs twice per shed batch,
        # but fills must commit once — the identities still sum exactly,
        # and only served (non-dropped) queries ever looked up rows.
        result = _cluster(
            shed_policy="drop-late", max_batch_size=4, batch_timeout_s=0.001,
        ).run(_scenario(n=600, gap=0.00002, sla_s=0.003, user=3))
        c = result.cache
        assert result.result.drop_rate > 0
        assert c.hits + c.misses == c.lookups > 0
        assert c.fill_bytes == c.misses * ROW
        served_rows = sum(
            r.size for r in result.result.records if not r.dropped
        ) * 2  # hot_rows_per_sample = round(0.5 * 4 features) = 2
        assert c.lookups <= served_rows

    def test_run_twice_is_deterministic(self):
        sim = _cluster()
        scenario = _scenario(user=7)
        first = sim.run(scenario)
        second = sim.run(scenario)
        assert first.result.records == second.result.records
        assert second.cache.fill_bytes == first.cache.fill_bytes
        assert second.cache.hits == first.cache.hits

    def test_failover_keeps_accounting_exact(self):
        result = _cluster(
            n_nodes=3, replication=2, fail_at=0.05, fail_node=1,
        ).run(_scenario())
        c = result.cache
        assert result.failed_nodes == [1]
        assert result.lost == 0
        assert c.hits + c.misses == c.lookups
        assert c.fill_bytes == c.misses * ROW


class TestSwitchInvalidation:
    def test_switch_rewarms_the_cache_and_charges_a_window(self):
        slow = fake_path("hybrid", GPU_V100, 85.0, 0.050, per_sample=0,
                         label="HYB")
        fast = fake_path("table", GPU_V100, 80.0, 0.004, per_sample=0,
                         label="TBL")
        template = SwitchController(
            {GPU_V100.name: [slow, fast]},
            patience=1, cooldown_s=10.0, load_s=0.010, teardown_s=0.002,
        )
        plan = greedy_shard([50_000] * 4, DIM, 2)
        sim = ClusterSimulator(
            StaticScheduler([slow]), plan, router="round-robin",
            track_energy=False, switch_controller=template,
            cache_bytes=1 << 20,
        )
        # Every query from one user keys one group, so the non-owner node
        # builds residency under the HYB label before the switch.  One
        # wave-1 query per node: its dispatch fills the cache under HYB
        # and (patience 1, HYB infeasible even unloaded) starts the
        # switch; silence until well past the window means the re-warm —
        # not demand fills under the new label — restores the hot set.
        queries = [
            Query(index=i, size=1, arrival_s=0.0, user=3) for i in range(2)
        ] + [
            Query(index=2 + i, size=1, arrival_s=1.0 + 0.01 * i, user=3)
            for i in range(10)
        ]
        scenario = ServingScenario(
            queries=QuerySet(queries=queries), sla_s=0.020
        )
        result = sim.run(scenario)
        c = result.cache
        assert result.switches >= 1
        assert c.invalidations >= 1
        assert c.rewarm_bytes > 0
        assert c.rewarm_s > 0
        # The re-fetched rows serve the incoming path: entries survive.
        assert c.hits + c.misses == c.lookups


class TestAutoscaleCache:
    def _elastic(self, schedule):
        # Replication 1, so every epoch leaves each node with non-owned
        # groups — the ones its cache serves (at full replication there
        # is nothing to cache and joins/drains move no cache bytes).
        controller = AutoscaleController(
            min_nodes=2, max_nodes=3, schedule=schedule,
        )
        plan = greedy_shard([50_000, 40_000, 30_000, 20_000], DIM, 3)
        return ClusterSimulator(
            StaticScheduler([_path()]), plan, router="cache-affinity",
            replication=1, link=ETHERNET_25G, track_energy=False,
            cache_bytes=1 << 20, autoscale=controller,
        )

    def test_join_warms_cache_inside_the_charged_window(self):
        sim = self._elastic(schedule=((0.05, "up"),))
        result = sim.run(_scenario(user=5))
        up = next(e for e in result.scale_events if e.kind == "up")
        assert up.cache_warm_bytes > 0
        assert result.cache.warm_bytes == up.cache_warm_bytes
        # The window covers the shard slice AND the cache warm.
        assert up.warm_s >= sim.link.transfer_time(
            up.warm_bytes + up.cache_warm_bytes
        ) - 1e-12

    def test_drain_donates_the_hot_set_to_survivors(self):
        sim = self._elastic(schedule=((0.05, "up"), (0.12, "down")))
        result = sim.run(_scenario(user=5))
        down = next(e for e in result.scale_events if e.kind == "down")
        assert down.cache_donated_bytes > 0
        assert result.cache.donated_bytes == down.cache_donated_bytes
        assert result.lost == 0
        c = result.cache
        assert c.hits + c.misses == c.lookups
        assert c.fill_bytes == c.misses * ROW
        n = len(result.result.records)
        assert sorted(r.index for r in result.result.records) == list(range(n))
