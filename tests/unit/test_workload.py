"""ServingScenario SLA resolution and process-parameter plumbing."""

import pytest

from repro.data.queries import Query, QuerySet
from repro.serving.workload import ServingScenario, TenantSpec


def query(index=0, tenant=""):
    return Query(index=index, size=16, arrival_s=0.0, tenant=tenant)


class TestSlaFor:
    def test_untagged_query_gets_run_level_sla(self):
        scenario = ServingScenario(
            queries=QuerySet(queries=[query()]), sla_s=0.02,
            sla_by_tenant={"feed": 0.005},
        )
        assert scenario.sla_for(query()) == 0.02

    def test_tagged_query_resolves_its_tenant(self):
        scenario = ServingScenario(
            queries=QuerySet(queries=[]), sla_s=0.02,
            sla_by_tenant={"feed": 0.005, "ads": 0.1},
        )
        assert scenario.sla_for(query(tenant="feed")) == 0.005
        assert scenario.sla_for(query(tenant="ads")) == 0.1

    def test_unknown_tenant_falls_back_to_run_level(self):
        scenario = ServingScenario(
            queries=QuerySet(queries=[]), sla_s=0.02,
            sla_by_tenant={"feed": 0.005},
        )
        assert scenario.sla_for(query(tenant="batch-job")) == 0.02

    def test_tagged_query_without_tenant_map_uses_run_level(self):
        scenario = ServingScenario(queries=QuerySet(queries=[]), sla_s=0.02)
        assert scenario.sla_for(query(tenant="feed")) == 0.02

    def test_multi_tenant_sla_map_and_strictest_default(self):
        scenario = ServingScenario.multi_tenant([
            TenantSpec(name="feed", n_queries=5, qps=10.0, sla_s=0.010),
            TenantSpec(name="ads", n_queries=5, qps=10.0, sla_s=0.200),
        ])
        assert scenario.sla_s == 0.010
        assert scenario.sla_by_tenant == {"feed": 0.010, "ads": 0.200}
        for q in scenario.queries:
            assert scenario.sla_for(q) == scenario.sla_by_tenant[q.tenant]


class TestProcessForwarding:
    def test_with_process_forwards_generator_parameters(self):
        mild = ServingScenario.with_process(
            "flash-crowd", n_queries=2000, qps=500.0, seed=8,
            spike_factor=1.0,
        )
        sharp = ServingScenario.with_process(
            "flash-crowd", n_queries=2000, qps=500.0, seed=8,
            spike_factor=8.0,
        )
        horizon = 4.0
        window = lambda s: sum(  # noqa: E731
            1 for q in s.queries
            if 0.5 * horizon <= q.arrival_s < 0.6 * horizon
        )
        assert window(sharp) > window(mild)

    def test_bad_parameter_propagates(self):
        with pytest.raises(ValueError):
            ServingScenario.diurnal(n_queries=10, amplitude=2.0)
