import numpy as np
import pytest

from repro.nn.gradcheck import numerical_gradient
from repro.nn.losses import bce_with_logits, mse


class TestBCEWithLogits:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([10.0, -10.0])
        labels = np.array([1.0, 0.0])
        loss, _ = bce_with_logits(logits, labels)
        assert loss < 1e-4

    def test_wrong_prediction_high_loss(self):
        loss, _ = bce_with_logits(np.array([10.0]), np.array([0.0]))
        assert loss > 5.0

    def test_uncertain_is_log2(self):
        loss, _ = bce_with_logits(np.zeros(4), np.array([0.0, 1.0, 0.0, 1.0]))
        np.testing.assert_allclose(loss, np.log(2.0))

    def test_gradient_matches_numerical(self, rng):
        logits = rng.standard_normal(6)
        labels = (rng.random(6) > 0.5).astype(float)
        _, grad = bce_with_logits(logits, labels)
        num = numerical_gradient(
            lambda z: bce_with_logits(z, labels)[0], logits.copy()
        )
        np.testing.assert_allclose(grad, num, atol=1e-7)

    def test_extreme_logits_stable(self):
        loss, grad = bce_with_logits(np.array([500.0, -500.0]), np.array([0.0, 1.0]))
        assert np.isfinite(loss)
        assert np.isfinite(grad).all()

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            bce_with_logits(np.zeros(3), np.zeros(4))


class TestMSE:
    def test_zero_at_match(self, rng):
        x = rng.standard_normal(5)
        loss, grad = mse(x, x.copy())
        assert loss == 0.0
        np.testing.assert_array_equal(grad, np.zeros(5))

    def test_value(self):
        loss, _ = mse(np.array([1.0, 3.0]), np.array([0.0, 0.0]))
        np.testing.assert_allclose(loss, (1 + 9) / 2)

    def test_gradient_matches_numerical(self, rng):
        pred = rng.standard_normal(5)
        target = rng.standard_normal(5)
        _, grad = mse(pred, target)
        num = numerical_gradient(lambda p: mse(p, target)[0], pred.copy())
        np.testing.assert_allclose(grad, num, atol=1e-7)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            mse(np.zeros(3), np.zeros((3, 1)))
