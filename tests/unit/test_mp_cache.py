import numpy as np
import pytest

from repro.core.mp_cache import (
    CacheEffect,
    DecoderCentroidCache,
    EncoderCache,
    MPCache,
)
from repro.core.representations import RepresentationConfig
from repro.data.zipf import ZipfSampler
from repro.embeddings.dhe import DHEEmbedding


@pytest.fixture
def samplers():
    return [ZipfSampler(10_000, alpha=1.1, seed=f) for f in range(4)]


class TestEncoderCacheStatic:
    def test_capacity_entries(self):
        cache = EncoderCache(capacity_bytes=2048, embedding_dim=16)
        assert cache.capacity_entries == 2048 // (16 * 4 + 8)

    def test_hit_rate_increases_with_capacity(self, samplers):
        rates = []
        for capacity in (2 * 1024, 64 * 1024, 2 * 1024 * 1024):
            cache = EncoderCache(capacity, embedding_dim=16)
            cache.fit_static(samplers)
            rates.append(cache.expected_hit_rate(samplers))
        assert rates[0] < rates[1] < rates[2]

    def test_expected_matches_observed(self, samplers):
        cache = EncoderCache(32 * 1024, embedding_dim=16)
        cache.fit_static(samplers)
        expected = cache.expected_hit_rate(samplers)
        hits = total = 0
        for f, sampler in enumerate(samplers):
            ids = sampler.sample(20_000)
            mask = cache.lookup(f, ids)
            hits += mask.sum()
            total += mask.size
        assert abs(hits / total - expected) < 0.02

    def test_lookup_hits_only_residents(self, samplers):
        cache = EncoderCache(32 * 1024, embedding_dim=16)
        cache.fit_static(samplers)
        hot = samplers[0].hottest(5)
        assert cache.lookup(0, hot).all()

    def test_unfitted_hit_rate_zero(self, samplers):
        cache = EncoderCache(1024, embedding_dim=16)
        assert cache.expected_hit_rate(samplers) == 0.0

    def test_stats_accumulate_and_reset(self, samplers):
        cache = EncoderCache(32 * 1024, embedding_dim=16)
        cache.fit_static(samplers)
        cache.lookup(0, samplers[0].sample(100))
        assert cache.hits + cache.misses == 100
        assert 0 <= cache.observed_hit_rate <= 1
        cache.reset_stats()
        assert cache.hits == 0 and cache.misses == 0

    def test_rejects_bad_policy(self):
        with pytest.raises(ValueError):
            EncoderCache(1024, 16, policy="fifo")

    def test_fit_requires_samplers(self):
        with pytest.raises(ValueError):
            EncoderCache(1024, 16).fit_static([])


class TestEncoderCacheLRU:
    def test_repeated_ids_hit(self):
        cache = EncoderCache(64 * 1024, embedding_dim=16, policy="lru")
        ids = np.array([1, 2, 3])
        first = cache.lookup(0, ids)
        second = cache.lookup(0, ids)
        assert not first.any()
        assert second.all()

    def test_eviction_under_pressure(self):
        cache = EncoderCache(10 * (16 * 4 + 8), embedding_dim=16, policy="lru")
        cache.lookup(0, np.arange(10))
        cache.lookup(0, np.arange(100, 120))  # evicts the first ten
        assert not cache.lookup(0, np.arange(10)).any()

    def test_recency_protects_hot_id(self):
        cache = EncoderCache(3 * (16 * 4 + 8), embedding_dim=16, policy="lru")
        cache.lookup(0, np.array([1]))
        cache.lookup(0, np.array([2, 1, 3, 1]))  # 1 stays recent
        assert cache.lookup(0, np.array([1]))[0]

    def entry(self, n):
        return n * (16 * 4 + 8)

    def test_first_feature_cannot_claim_whole_capacity(self):
        """Regression: per-feature quota was computed from the pre-insert
        feature count, so feature 0 kept ``capacity`` entries and with F
        features each later one got capacity // (F - 1)."""
        cache = EncoderCache(self.entry(10), embedding_dim=16, policy="lru")
        cache.lookup(0, np.arange(10))  # fills feature 0 to the brim
        cache.lookup(1, np.arange(100, 105))
        # Two features now share the capacity: 5 entries each.
        assert len(cache._lru[0]) <= 5
        assert len(cache._lru[1]) <= 5

    def test_rebalance_evicts_coldest_entries(self):
        cache = EncoderCache(self.entry(10), embedding_dim=16, policy="lru")
        cache.lookup(0, np.arange(10))
        cache.lookup(1, np.array([100]))
        # Feature 0 kept its five *most recent* entries (5..9).
        assert set(cache._lru[0]) == {5, 6, 7, 8, 9}

    def test_total_occupancy_never_exceeds_capacity(self):
        cache = EncoderCache(self.entry(12), embedding_dim=16, policy="lru")
        rng = np.random.default_rng(0)
        for feature in (0, 1, 2, 0, 1, 2):
            cache.lookup(feature, rng.integers(0, 1000, size=20))
            total = sum(len(c) for c in cache._lru.values())
            assert total <= cache.capacity_entries

    def test_declared_feature_count_pins_quota_up_front(self):
        cache = EncoderCache(
            self.entry(10), embedding_dim=16, policy="lru", n_features=2
        )
        cache.lookup(0, np.arange(10))
        # Feature 0 never overfills even before feature 1 shows up.
        assert len(cache._lru[0]) == 5

    def test_declared_feature_count_validated(self):
        with pytest.raises(ValueError):
            EncoderCache(1024, 16, policy="lru", n_features=0)

    def test_extra_features_beyond_declared_rejected(self):
        """Admitting undeclared features would overcommit the byte budget
        (each would still claim capacity // n_features entries)."""
        cache = EncoderCache(
            self.entry(10), embedding_dim=16, policy="lru", n_features=2
        )
        cache.lookup(0, np.arange(3))
        cache.lookup(1, np.arange(3))
        with pytest.raises(ValueError):
            cache.lookup(2, np.arange(3))

    def test_steady_state_hit_rate_balanced_across_features(self):
        """With the quota fix, identically-distributed features see
        comparable hit rates instead of feature 0 dominating."""
        cache = EncoderCache(self.entry(200), embedding_dim=16, policy="lru")
        samplers = [ZipfSampler(5000, alpha=1.2, seed=f) for f in range(4)]
        rates = []
        for _ in range(3):  # warm, then measure per-feature
            for f, sampler in enumerate(samplers):
                cache.lookup(f, sampler.sample(2000))
        for f, sampler in enumerate(samplers):
            cache.reset_stats()
            cache.lookup(f, sampler.sample(2000))
            rates.append(cache.observed_hit_rate)
        assert max(rates) - min(rates) < 0.15


class TestDecoderCentroidCache:
    def make(self, rng, n_centroids=8):
        dhe = DHEEmbedding(dim=4, k=16, dnn=16, h=1, rng=rng)
        cache = DecoderCentroidCache(n_centroids, seed=0)
        sampler = ZipfSampler(1000, seed=0)
        intermediates = dhe.encode(sampler.sample(500))
        cache.fit(intermediates, dhe)
        return dhe, cache, sampler

    def test_generate_shape(self, rng):
        dhe, cache, sampler = self.make(rng)
        out = cache.generate(dhe.encode(sampler.sample(32)))
        assert out.shape == (32, 4)

    def test_outputs_are_decoded_centroids(self, rng):
        dhe, cache, sampler = self.make(rng)
        out = cache.generate(dhe.encode(sampler.sample(64)))
        assert len(np.unique(out, axis=0)) <= 8

    def test_error_decreases_with_centroids(self, rng):
        dhe = DHEEmbedding(dim=4, k=16, dnn=16, h=1, rng=rng)
        sampler = ZipfSampler(1000, seed=0)
        intermediates = dhe.encode(sampler.sample(800))
        probe = dhe.encode(sampler.sample(200))
        errors = []
        for n in (2, 32, 256):
            cache = DecoderCentroidCache(n, seed=0)
            cache.fit(intermediates, dhe)
            errors.append(cache.approximation_error(probe, dhe))
        assert errors[0] > errors[-1]

    def test_speedup_formula(self):
        rep = RepresentationConfig("dhe", 16, k=2048, dnn=480, h=2)
        cache = DecoderCentroidCache(256)
        expected = rep.decoder_flops_per_lookup() / (2 * 2048 * 256)
        np.testing.assert_allclose(cache.speedup(rep), expected)

    def test_speedup_clamped_at_one(self):
        rep = RepresentationConfig("dhe", 16, k=8, dnn=8, h=1)
        cache = DecoderCentroidCache(10_000)
        assert cache.speedup(rep) == 1.0

    def test_generate_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DecoderCentroidCache(4).generate(np.zeros((2, 8)))

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            DecoderCentroidCache(0)


class TestCacheEffectAndMPCache:
    def test_effect_validation(self):
        with pytest.raises(ValueError):
            CacheEffect(encoder_hit_rate=1.5, decoder_speedup=2.0, accuracy_penalty=0)
        with pytest.raises(ValueError):
            CacheEffect(encoder_hit_rate=0.5, decoder_speedup=0.5, accuracy_penalty=0)

    def test_mp_cache_combines_tiers(self, samplers, rng):
        encoder = EncoderCache(64 * 1024, embedding_dim=16)
        encoder.fit_static(samplers)
        decoder = DecoderCentroidCache(64)
        mp = MPCache(encoder, decoder)
        rep = RepresentationConfig("dhe", 16, k=1024, dnn=256, h=2)
        effect = mp.effect(rep, samplers, approximation_error=0.05)
        assert 0 < effect.encoder_hit_rate < 1
        assert effect.decoder_speedup > 1
        assert effect.accuracy_penalty > 0

    def test_mp_cache_encoder_only(self, samplers):
        encoder = EncoderCache(64 * 1024, embedding_dim=16)
        encoder.fit_static(samplers)
        effect = MPCache(encoder, None).effect(
            RepresentationConfig("dhe", 16, k=64, dnn=32, h=1), samplers
        )
        assert effect.decoder_speedup == 1.0
