import numpy as np
import pytest

from repro.embeddings.ttrec import (
    TTEmbedding,
    factorize_evenly,
    mixed_radix_digits,
    tt_bytes,
)
from repro.models.configs import KAGGLE
from repro.models.dlrm import build_dlrm
from repro.nn.gradcheck import numerical_gradient


class TestFactorization:
    def test_product_covers_n(self):
        for n in (1, 7, 100, 10_131_227):
            factors = factorize_evenly(n, 3)
            assert int(np.prod(factors)) >= n
            assert len(factors) == 3

    def test_balanced(self):
        factors = factorize_evenly(1_000_000, 3)
        assert max(factors) / min(factors) < 2.0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            factorize_evenly(0, 3)

    def test_mixed_radix_roundtrip(self):
        radices = [7, 11, 13]
        ids = np.arange(0, 7 * 11 * 13, 17)
        digits = mixed_radix_digits(ids, radices)
        reconstructed = digits[0] + radices[0] * (
            digits[1] + radices[1] * digits[2]
        )
        np.testing.assert_array_equal(reconstructed, ids)

    def test_digits_within_radices(self):
        digits = mixed_radix_digits(np.arange(500), [8, 8, 8])
        for digit, radix in zip(digits, [8, 8, 8]):
            assert digit.max() < radix


class TestTTEmbedding:
    def test_output_shape(self, rng):
        emb = TTEmbedding(100, 8, rank=4, rng=rng)
        assert emb(np.array([0, 5, 99])).shape == (3, 8)

    def test_2d_ids(self, rng):
        emb = TTEmbedding(100, 8, rank=4, rng=rng)
        assert emb(np.zeros((4, 2), dtype=int)).shape == (4, 2, 8)

    def test_deterministic_rows(self, rng):
        emb = TTEmbedding(50, 8, rank=2, rng=rng)
        a = emb(np.array([7]))
        b = emb(np.array([7, 7]))
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(b[0], b[1])

    def test_distinct_rows_differ(self, rng):
        emb = TTEmbedding(50, 8, rank=4, rng=rng)
        out = emb(np.array([1, 2]))
        assert not np.allclose(out[0], out[1])

    def test_out_of_range_rejected(self, rng):
        emb = TTEmbedding(50, 8, rank=2, rng=rng)
        with pytest.raises(IndexError):
            emb(np.array([50]))

    def test_compression_on_large_table(self, rng):
        emb = TTEmbedding(1_000_000, 16, rank=8, rng=rng)
        assert emb.compression_ratio() > 50

    def test_tt_bytes_matches_instance(self, rng):
        emb = TTEmbedding(1234, 16, rank=4, rng=rng)
        assert tt_bytes(1234, 16, 4) == emb.bytes()

    def test_flops_per_lookup_positive_and_rank_scaling(self, rng):
        low = TTEmbedding(100, 16, rank=2, rng=rng).flops_per_lookup()
        high = TTEmbedding(100, 16, rank=8, rng=rng).flops_per_lookup()
        assert 0 < low < high

    def test_invalid_dim_factors_rejected(self, rng):
        with pytest.raises(ValueError):
            TTEmbedding(100, 8, rank=2, rng=rng, dim_factors=(2, 2, 3))

    def test_gradients_match_numerical(self, rng):
        emb = TTEmbedding(30, 8, rank=2, rng=rng)
        ids = np.array([0, 7, 29, 7])
        out = emb(ids)
        probe = rng.standard_normal(out.shape)
        emb.zero_grad()
        emb.backward(probe)
        for name, param in emb.named_parameters():
            def loss_of(p_val, _param=param):
                saved = _param.data.copy()
                _param.data = p_val
                val = float(np.sum(emb(ids) * probe))
                _param.data = saved
                return val

            num = numerical_gradient(loss_of, param.data.copy(), eps=1e-6)
            np.testing.assert_allclose(
                param.grad, num, atol=1e-6, rtol=1e-4, err_msg=name
            )

    def test_gradient_descent_fits_target_rows(self, rng):
        """TT cores can be trained to approximate specific row vectors."""
        emb = TTEmbedding(20, 8, rank=4, rng=rng)
        ids = np.arange(20)
        target = rng.standard_normal((20, 8)) * 0.1
        initial = float(np.mean((emb(ids) - target) ** 2))
        for _ in range(400):
            out = emb(ids)
            grad = 2.0 * (out - target) / target.size
            emb.zero_grad()
            emb.backward(grad)
            for param in emb.parameters():
                param.data -= 2.0 * param.grad
        final = float(np.mean((emb(ids) - target) ** 2))
        assert final < initial / 3


class TestTTRecInDLRM:
    def test_build_and_train_step(self, tiny_config, rng):
        model = build_dlrm(tiny_config, "ttrec", rng, tt_rank=2)
        dense = rng.standard_normal((4, tiny_config.n_dense))
        sparse = np.stack(
            [rng.integers(0, rows, 4) for rows in tiny_config.cardinalities], axis=1
        )
        logits = model(dense, sparse)
        assert logits.shape == (4,)
        model.zero_grad()
        model.backward(rng.standard_normal(4))
        assert any(np.any(p.grad != 0) for p in model.parameters())

    def test_ttrec_compresses_vs_table(self, rng):
        from repro.embeddings.ttrec import tt_bytes

        dense_bytes = sum(rows * 16 * 4 for rows in KAGGLE.cardinalities)
        tt_total = sum(tt_bytes(rows, 16, 8) for rows in KAGGLE.cardinalities)
        assert tt_total < dense_bytes / 10
