"""Cluster simulator: shard map, equivalence, failover, backpressure."""

import pytest

from repro.analysis.sharding import greedy_shard
from repro.experiments.setup import (
    build_cluster,
    build_schedulers,
    run_cluster_serving,
)
from repro.hardware.topology import ETHERNET_25G
from repro.models.configs import KAGGLE
from repro.serving.cluster import ClusterSimulator, ShardMap
from repro.serving.simulator import ServingSimulator
from repro.serving.workload import ServingScenario


def _scenario(n_queries=400, qps=20_000.0, **kwargs):
    return ServingScenario.paper_default(
        n_queries=n_queries, qps=qps, **kwargs
    )


@pytest.fixture(scope="module")
def mp_rec():
    return build_schedulers(KAGGLE)["mp-rec"]


class TestShardMap:
    def test_owners_chain_replicas(self):
        plan = greedy_shard(KAGGLE.cardinalities, 16, 4)
        shard = ShardMap.from_plan(plan, replication=2)
        assert shard.owners[0] == frozenset({0, 1})
        assert shard.owners[3] == frozenset({3, 0})  # wraps

    def test_single_node_everything_local(self):
        plan = greedy_shard(KAGGLE.cardinalities, 16, 1)
        shard = ShardMap.from_plan(plan)
        assert shard.cold_local_share == (1.0,)
        assert shard.remote_bytes_per_sample(0, 0) == 0.0

    def test_owner_pays_less_exchange(self):
        plan = greedy_shard(KAGGLE.cardinalities, 16, 4)
        shard = ShardMap.from_plan(plan, replication=1, hot_fraction=0.5)
        group = 2
        owner = next(iter(shard.owners[group]))
        outsider = (owner + 1) % 4
        assert shard.remote_bytes_per_sample(
            owner, group
        ) < shard.remote_bytes_per_sample(outsider, group)

    def test_replication_shrinks_remote_bytes(self):
        plan = greedy_shard(KAGGLE.cardinalities, 16, 4)
        r1 = ShardMap.from_plan(plan, replication=1)
        r2 = ShardMap.from_plan(plan, replication=2)
        assert r2.remote_bytes_per_sample(0, 1) <= r1.remote_bytes_per_sample(0, 1)

    def test_group_of_is_deterministic_and_in_range(self):
        plan = greedy_shard(KAGGLE.cardinalities, 16, 8)
        shard = ShardMap.from_plan(plan)
        queries = _scenario(n_queries=100).queries
        groups = [shard.group_of(q) for q in queries]
        assert groups == [shard.group_of(q) for q in queries]
        assert all(0 <= g < 8 for g in groups)
        assert len(set(groups)) > 1  # spreads across groups

    def test_coverage(self):
        plan = greedy_shard(KAGGLE.cardinalities, 16, 4)
        r1 = ShardMap.from_plan(plan, replication=1)
        r2 = ShardMap.from_plan(plan, replication=2)
        assert r1.coverage_ok({0, 1, 2, 3})
        assert not r1.coverage_ok({0, 1, 3})
        assert r2.coverage_ok({0, 1, 3})
        assert not r2.coverage_ok({0})

    def test_row_split_features_are_only_fractionally_local(self):
        # One table row-split across all 4 nodes: each node holds ~1/4 of
        # the rows, so a lookup is local with probability ~1/4 — the map
        # must not credit full locality to every host.
        rows = 1_000_000
        plan = greedy_shard([rows], 16, 4, node_capacity_bytes=rows * 16)
        assert len(plan.assignment[0]) == 4  # genuinely row-split
        shard = ShardMap.from_plan(plan, replication=1, hot_fraction=0.0)
        for node in range(4):
            assert shard.cold_local_share[node] == pytest.approx(0.25)
            assert shard.remote_bytes_per_sample(node, 0) == pytest.approx(
                0.75 * shard.bytes_per_sample
            )

    def test_validation(self):
        plan = greedy_shard(KAGGLE.cardinalities, 16, 4)
        with pytest.raises(ValueError):
            ShardMap.from_plan(plan, replication=0)
        with pytest.raises(ValueError):
            ShardMap.from_plan(plan, replication=5)
        with pytest.raises(ValueError):
            ShardMap.from_plan(plan, hot_fraction=1.5)


class TestSingleNodeEquivalence:
    """A 1-node cluster must reproduce the single-node engine exactly."""

    @pytest.mark.parametrize("batch", [1, 16])
    def test_records_match_engine(self, mp_rec, batch):
        scenario = _scenario()
        engine = ServingSimulator(
            mp_rec, max_batch_size=batch, batch_timeout_s=0.001
        )
        plan = greedy_shard(KAGGLE.cardinalities, KAGGLE.embedding_dim, 1)
        cluster = ClusterSimulator(
            mp_rec, plan, max_batch_size=batch, batch_timeout_s=0.001
        )
        expected = sorted(engine.run(scenario).records, key=lambda r: r.index)
        got = sorted(cluster.run(scenario).result.records, key=lambda r: r.index)
        assert got == expected

    def test_records_match_with_shedding(self, mp_rec):
        scenario = _scenario(qps=60_000.0)
        engine = ServingSimulator(mp_rec, shed_policy="deadline-aware")
        plan = greedy_shard(KAGGLE.cardinalities, KAGGLE.embedding_dim, 1)
        cluster = ClusterSimulator(mp_rec, plan, shed_policy="deadline-aware")
        expected = sorted(engine.run(scenario).records, key=lambda r: r.index)
        got = sorted(cluster.run(scenario).result.records, key=lambda r: r.index)
        assert got == expected


class TestClusterServing:
    def test_every_query_served_once(self, mp_rec):
        scenario = _scenario()
        plan = greedy_shard(KAGGLE.cardinalities, KAGGLE.embedding_dim, 4)
        cluster = ClusterSimulator(
            mp_rec, plan, router="least-loaded", replication=2,
            max_batch_size=8, batch_timeout_s=0.001,
        )
        result = cluster.run(scenario)
        indices = sorted(r.index for r in result.result.records)
        assert indices == list(range(len(scenario.queries)))
        assert result.result.drop_rate == 0.0
        assert sum(result.per_node_served) == len(scenario.queries)

    def test_slower_link_hurts_latency(self, mp_rec):
        scenario = _scenario()
        plan = greedy_shard(KAGGLE.cardinalities, KAGGLE.embedding_dim, 4)
        fast = ClusterSimulator(mp_rec, plan, max_batch_size=8).run(scenario)
        slow = ClusterSimulator(
            mp_rec, plan, max_batch_size=8, link=ETHERNET_25G
        ).run(scenario)
        assert slow.result.p50_latency_s > fast.result.p50_latency_s

    def test_streaming_matches_exact_counters(self, mp_rec):
        scenario = _scenario()
        plan = greedy_shard(KAGGLE.cardinalities, KAGGLE.embedding_dim, 4)
        kwargs = dict(router="locality", replication=2, max_batch_size=8)
        exact = ClusterSimulator(mp_rec, plan, **kwargs).run(scenario)
        stream = ClusterSimulator(mp_rec, plan, **kwargs).run_streaming(scenario)
        assert stream.result.n == len(exact.result.records)
        assert stream.result.raw_throughput == pytest.approx(
            exact.result.raw_throughput
        )
        assert stream.result.violation_rate == pytest.approx(
            exact.result.violation_rate
        )

    def test_backpressure_sheds_at_the_edge(self, mp_rec):
        scenario = _scenario(qps=100_000.0)
        plan = greedy_shard(KAGGLE.cardinalities, KAGGLE.embedding_dim, 2)
        cluster = ClusterSimulator(mp_rec, plan, max_queue=4).run(scenario)
        assert cluster.edge_drops > 0
        assert cluster.result.drop_rate > 0.0
        # Edge drops and served queries account for every query.
        assert cluster.edge_drops + sum(cluster.per_node_served) == len(
            scenario.queries
        )

    def test_summary_merges_cluster_fields(self, mp_rec):
        plan = greedy_shard(KAGGLE.cardinalities, KAGGLE.embedding_dim, 2)
        summary = ClusterSimulator(mp_rec, plan).run(_scenario()).summary()
        assert summary["n_nodes"] == 2
        assert "raw_tput" in summary and "rerouted" in summary


class TestFailover:
    def test_replicated_failover_loses_nothing(self, mp_rec):
        scenario = _scenario()
        plan = greedy_shard(KAGGLE.cardinalities, KAGGLE.embedding_dim, 4)
        cluster = ClusterSimulator(
            mp_rec, plan, router="locality", replication=2,
            max_batch_size=8, batch_timeout_s=0.001,
            fail_at=scenario.queries.queries[200].arrival_s, fail_node=1,
        ).run(scenario)
        assert cluster.failed_nodes == [1]
        assert cluster.lost == 0
        assert cluster.rerouted > 0
        assert cluster.result.drop_rate == 0.0
        indices = sorted(r.index for r in cluster.result.records)
        assert indices == list(range(len(scenario.queries)))

    def test_unreplicated_failure_loses_coverage(self, mp_rec):
        scenario = _scenario()
        plan = greedy_shard(KAGGLE.cardinalities, KAGGLE.embedding_dim, 4)
        cluster = ClusterSimulator(
            mp_rec, plan, replication=1, max_batch_size=8,
            batch_timeout_s=0.001,
            fail_at=scenario.queries.queries[200].arrival_s, fail_node=0,
        ).run(scenario)
        # The dead node's shards are gone: displaced + later queries drop.
        assert cluster.lost + cluster.edge_drops > 0
        assert cluster.result.drop_rate > 0.0
        # Every query is still accounted for (served or dropped).
        assert len(cluster.result.records) == len(scenario.queries)

    def test_failover_under_backpressure_accounts_each_query_once(self, mp_rec):
        # A displaced query that backpressure then sheds at the edge must
        # count as an edge drop, not as a successful reroute.
        scenario = _scenario(qps=100_000.0)
        plan = greedy_shard(KAGGLE.cardinalities, KAGGLE.embedding_dim, 4)
        cluster = ClusterSimulator(
            mp_rec, plan, replication=2, max_batch_size=8,
            batch_timeout_s=0.001, max_queue=8,
            fail_at=scenario.queries.queries[100].arrival_s, fail_node=0,
        ).run(scenario)
        assert len(cluster.result.records) == len(scenario.queries)
        indices = sorted(r.index for r in cluster.result.records)
        assert indices == list(range(len(scenario.queries)))
        served = sum(cluster.per_node_served)
        dropped = sum(
            1 for r in cluster.result.records if r.dropped
        )
        assert served + dropped == len(scenario.queries)

    def test_wasted_energy_counted(self, mp_rec):
        # The seeded scenario saturates node 0 by t=5ms, so the failure
        # abandons dispatched batches mid-execution: their energy must be
        # tallied as waste.
        scenario = _scenario()
        plan = greedy_shard(KAGGLE.cardinalities, KAGGLE.embedding_dim, 4)
        cluster = ClusterSimulator(
            mp_rec, plan, replication=2, max_batch_size=8,
            batch_timeout_s=0.001, fail_at=0.005, fail_node=0,
        ).run(scenario)
        assert cluster.rerouted > 0
        assert cluster.wasted_energy_j > 0.0

    def test_router_instance_reused_across_runs_stays_deterministic(self, mp_rec):
        from repro.serving.routing import RoundRobinRouter

        scenario = _scenario(n_queries=200)
        plan = greedy_shard(KAGGLE.cardinalities, KAGGLE.embedding_dim, 3)
        sim = ClusterSimulator(mp_rec, plan, router=RoundRobinRouter())
        first = sim.run(scenario)
        second = sim.run(scenario)
        assert first.per_node_served == second.per_node_served


class TestValidation:
    def test_scheduler_count_must_match_nodes(self, mp_rec):
        plan = greedy_shard(KAGGLE.cardinalities, 16, 4)
        with pytest.raises(ValueError, match="one scheduler per node"):
            ClusterSimulator([mp_rec, mp_rec], plan)

    def test_fail_node_in_range(self, mp_rec):
        plan = greedy_shard(KAGGLE.cardinalities, 16, 2)
        with pytest.raises(ValueError, match="fail_node"):
            ClusterSimulator(mp_rec, plan, fail_at=0.1, fail_node=2)

    def test_batch_and_queue_validation(self, mp_rec):
        plan = greedy_shard(KAGGLE.cardinalities, 16, 2)
        with pytest.raises(ValueError):
            ClusterSimulator(mp_rec, plan, max_batch_size=0)
        with pytest.raises(ValueError):
            ClusterSimulator(mp_rec, plan, batch_timeout_s=-1.0)
        with pytest.raises(ValueError):
            ClusterSimulator(mp_rec, plan, max_queue=-1)

    def test_build_cluster_rejects_unknown_scheduler(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            build_cluster(KAGGLE, 2, scheduler="nope")


class TestExperimentsEntryPoint:
    def test_run_cluster_serving(self):
        result = run_cluster_serving(
            KAGGLE, _scenario(n_queries=200), n_nodes=2, router="locality",
            replication=2, max_batch_size=8,
        )
        assert result.n_nodes == 2
        assert result.router == "locality"
        assert len(result.result.records) == 200
