import numpy as np
import pytest

from repro.analysis.sharding import greedy_shard, round_robin_shard
from repro.models.configs import KAGGLE, TERABYTE


class TestGreedyShard:
    def test_every_feature_assigned(self):
        plan = greedy_shard(KAGGLE.cardinalities, 16, 4)
        assert all(slices for slices in plan.assignment)
        total_rows = sum(
            rows for slices in plan.assignment for _, rows in slices
        )
        assert total_rows == sum(KAGGLE.cardinalities)

    def test_balances_better_than_round_robin(self):
        greedy = greedy_shard(KAGGLE.cardinalities, 16, 8)
        naive = round_robin_shard(KAGGLE.cardinalities, 16, 8)
        assert greedy.imbalance <= naive.imbalance

    def test_imbalance_reasonable(self):
        plan = greedy_shard(TERABYTE.cardinalities, 64, 8)
        # Terabyte has a few ~10M-row tables; LPT still keeps max/mean < 2.
        assert plan.imbalance < 2.0

    def test_single_node_trivial(self):
        plan = greedy_shard(KAGGLE.cardinalities, 16, 1)
        assert plan.imbalance == 1.0
        assert plan.lookup_fanout() == 1

    def test_node_bytes_sum_to_model_size(self):
        plan = greedy_shard(KAGGLE.cardinalities, 16, 4)
        assert plan.node_bytes().sum() == sum(KAGGLE.cardinalities) * 16 * 4

    def test_row_wise_split_under_capacity_limit(self):
        cards = [100, 10_000_000, 50]
        capacity = 10_000_000 * 16 * 4 // 4  # the big table cannot fit whole
        plan = greedy_shard(cards, 16, 4, node_capacity_bytes=capacity)
        big_slices = plan.assignment[1]
        assert len(big_slices) == 4  # split across all nodes
        assert sum(rows for _, rows in big_slices) == 10_000_000
        for node, _ in big_slices:
            assert 0 <= node < 4

    def test_fanout_bounded_by_nodes(self):
        plan = greedy_shard(KAGGLE.cardinalities, 16, 4)
        assert 1 <= plan.lookup_fanout() <= 4

    def test_alltoall_bytes(self):
        plan = greedy_shard(KAGGLE.cardinalities, 16, 8)
        per_sample = plan.alltoall_bytes_per_sample()
        assert 0 < per_sample <= 26 * 16 * 4

    def test_rejects_bad_nodes(self):
        with pytest.raises(ValueError):
            greedy_shard([10], 8, 0)
        with pytest.raises(ValueError):
            round_robin_shard([10], 8, 0)


class TestShardingPlanEdgeCases:
    def test_empty_feature_list(self):
        plan = greedy_shard([], 16, 4)
        assert plan.assignment == []
        assert plan.node_bytes().sum() == 0
        assert plan.imbalance == 1.0
        assert plan.lookup_fanout() == 0
        assert plan.alltoall_bytes_per_sample() == 0
        assert plan.feature_nodes() == []

    def test_single_node_holds_everything(self):
        plan = greedy_shard(KAGGLE.cardinalities, 16, 1)
        assert plan.feature_nodes() == [{0}] * len(KAGGLE.cardinalities)
        assert plan.alltoall_bytes_per_sample() == 0

    def test_row_split_table_larger_than_all_nodes(self):
        # One table bigger than the cluster's combined capacity still gets
        # an equal row-split placement; the overflow is the caller's memory
        # problem, not a placement crash.
        rows = 1_000_000
        capacity = rows * 16 * 4 // 8  # 4 nodes x capacity < table bytes
        plan = greedy_shard([rows], 16, 4, node_capacity_bytes=capacity)
        slices = plan.assignment[0]
        assert len(slices) == 4
        assert sum(r for _, r in slices) == rows
        assert {node for node, _ in slices} == {0, 1, 2, 3}
        assert plan.node_bytes().max() > capacity  # genuinely oversubscribed
        assert plan.lookup_fanout() == 1  # row-wise: one node per lookup

    def test_row_split_uneven_tail_slice(self):
        # 10 rows over 4 nodes: ceil(10/4)=3 -> slices 3,3,3,1.
        plan = greedy_shard([10], 4, 4, node_capacity_bytes=1)
        assert [r for _, r in plan.assignment[0]] == [3, 3, 3, 1]
