import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--dataset", "movielens"])

    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.scheduler == "mp-rec"
        assert args.sla_ms == 10.0


class TestCommands:
    def test_train(self, capsys):
        code = main([
            "train", "--dataset", "kaggle-mini", "--representation", "hybrid",
            "--steps", "5", "--batch-size", "32",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "hybrid" in out and "auc" in out

    def test_train_ttrec(self, capsys):
        code = main([
            "train", "--dataset", "kaggle-mini", "--representation", "ttrec",
            "--steps", "3", "--batch-size", "16",
        ])
        assert code == 0
        assert "ttrec" in capsys.readouterr().out

    def test_plan_hw2(self, capsys):
        code = main(["plan", "--dataset", "kaggle", "--hw", "hw2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cpu-broadwell" in out and "gpu-v100" in out
        assert "table-d4" in out  # the downsized-table decision

    def test_serve_static(self, capsys):
        code = main([
            "serve", "--dataset", "kaggle", "--scheduler", "table-cpu",
            "--queries", "100",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "correct predictions/s" in out
        assert "TABLE(CPU)" in out

    def test_serve_cluster(self, capsys):
        code = main([
            "serve", "--dataset", "kaggle", "--queries", "200", "--qps",
            "20000", "--nodes", "2", "--router", "locality",
            "--replication", "2", "--max-batch", "8",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 nodes, locality router" in out
        assert "per-node served" in out

    def test_serve_cluster_failover(self, capsys):
        code = main([
            "serve", "--dataset", "kaggle", "--queries", "200", "--qps",
            "20000", "--nodes", "4", "--replication", "2",
            "--fail-at", "0.002", "--fail-node", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "failed nodes" in out and "[1]" in out

    def test_serve_rejects_cluster_flags_without_nodes(self, capsys):
        code = main(["serve", "--fail-at", "0.5", "--queries", "10"])
        assert code == 2
        assert "--nodes" in capsys.readouterr().err
        code = main(["serve", "--router", "locality", "--queries", "10"])
        assert code == 2
        assert "--router" in capsys.readouterr().err

    def test_serve_cluster_rejects_bad_flag_combos(self, capsys):
        code = main([
            "serve", "--nodes", "2", "--replication", "3", "--queries", "10",
        ])
        assert code == 2
        assert "--replication" in capsys.readouterr().err
        code = main([
            "serve", "--nodes", "2", "--fail-at", "0.1", "--fail-node", "2",
            "--queries", "10",
        ])
        assert code == 2
        assert "--fail-node" in capsys.readouterr().err
        # --fail-node alone would silently skip the drill: reject it.
        code = main([
            "serve", "--nodes", "2", "--fail-node", "1", "--queries", "10",
        ])
        assert code == 2
        assert "--fail-at" in capsys.readouterr().err
        code = main(["serve", "--fail-node", "1", "--queries", "10"])
        assert code == 2
        assert "--nodes" in capsys.readouterr().err

    def test_serve_autoscale(self, capsys):
        code = main([
            "serve", "--dataset", "kaggle", "--queries", "400", "--qps",
            "30000", "--autoscale", "--nodes", "4", "--min-nodes", "2",
            "--replication", "2", "--max-batch", "8",
            "--batch-timeout-ms", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "elastic cluster        : 2..4 nodes" in out
        assert "node-seconds" in out

    def test_serve_autoscale_flag_hygiene(self, capsys):
        # Autoscale-only flags must not be silently eaten without --autoscale.
        code = main(["serve", "--min-nodes", "2", "--queries", "10"])
        assert code == 2
        assert "--autoscale" in capsys.readouterr().err
        code = main(["serve", "--max-nodes", "4", "--queries", "10"])
        assert code == 2
        assert "--autoscale" in capsys.readouterr().err
        code = main(["serve", "--scale-cooldown", "100", "--queries", "10"])
        assert code == 2
        assert "--autoscale" in capsys.readouterr().err
        # --autoscale on a 1-node "fleet" is rejected.
        code = main(["serve", "--autoscale", "--queries", "10"])
        assert code == 2
        assert "--nodes" in capsys.readouterr().err
        # A floor above the ceiling is rejected.
        code = main([
            "serve", "--autoscale", "--nodes", "4", "--min-nodes", "5",
            "--queries", "10",
        ])
        assert code == 2
        assert "--min-nodes" in capsys.readouterr().err
        # Conflicting ceilings are rejected.
        code = main([
            "serve", "--autoscale", "--nodes", "4", "--max-nodes", "8",
            "--queries", "10",
        ])
        assert code == 2
        assert "--max-nodes" in capsys.readouterr().err
        # Elasticity and the failure drill cannot be combined.
        code = main([
            "serve", "--autoscale", "--nodes", "4", "--fail-at", "0.1",
            "--queries", "10",
        ])
        assert code == 2
        assert "--fail-at" in capsys.readouterr().err
        # Replication chains must fit the smallest epoch.
        code = main([
            "serve", "--autoscale", "--nodes", "4", "--min-nodes", "2",
            "--replication", "3", "--queries", "10",
        ])
        assert code == 2
        assert "--replication" in capsys.readouterr().err
        # Switching fleets stay out of scope.
        code = main([
            "serve", "--switching", "--autoscale", "--max-nodes", "4",
            "--queries", "10",
        ])
        assert code == 2
        assert "single-node" in capsys.readouterr().err

    def test_serve_autopilot(self, capsys):
        code = main([
            "serve", "--dataset", "kaggle", "--queries", "400", "--qps",
            "30000", "--autopilot", "--nodes", "4", "--min-nodes", "2",
            "--replication", "2", "--max-batch", "8",
            "--batch-timeout-ms", "1", "--trace-decisions", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "autopilot fleet        : 2..4 nodes" in out
        assert "control decisions" in out and "node-seconds" in out

    def test_serve_autopilot_flag_hygiene(self, capsys):
        # The autopilot subsumes the stand-alone controllers.
        code = main([
            "serve", "--autopilot", "--switching", "--nodes", "2",
            "--queries", "10",
        ])
        assert code == 2
        assert "subsumes --switching" in capsys.readouterr().err
        code = main([
            "serve", "--autopilot", "--autoscale", "--nodes", "2",
            "--queries", "10",
        ])
        assert code == 2
        assert "subsumes --autoscale" in capsys.readouterr().err
        # It builds its own switching deployment; a forced scheduler
        # contradicts that.
        code = main([
            "serve", "--autopilot", "--nodes", "2", "--scheduler",
            "table-cpu", "--queries", "10",
        ])
        assert code == 2
        assert "--autopilot" in capsys.readouterr().err
        # Per-mechanism cooldowns tune the stand-alone controllers, not
        # the shared one.
        code = main([
            "serve", "--autopilot", "--nodes", "2", "--switch-cooldown",
            "100", "--queries", "10",
        ])
        assert code == 2
        assert "cooldown" in capsys.readouterr().err
        # The trace length is meaningless without a decision trace.
        code = main(["serve", "--trace-decisions", "4", "--queries", "10"])
        assert code == 2
        assert "--trace-decisions requires --autopilot" in (
            capsys.readouterr().err
        )
        # A 1-node "fleet" and the failure drill are rejected like
        # --autoscale.
        code = main(["serve", "--autopilot", "--queries", "10"])
        assert code == 2
        assert "--nodes" in capsys.readouterr().err
        code = main([
            "serve", "--autopilot", "--nodes", "4", "--fail-at", "0.1",
            "--queries", "10",
        ])
        assert code == 2
        assert "--fail-at" in capsys.readouterr().err

    def test_serve_cluster_cache(self, capsys):
        code = main([
            "serve", "--dataset", "kaggle", "--queries", "200", "--qps",
            "20000", "--nodes", "4", "--router", "cache-affinity",
            "--cache-mb", "8", "--max-batch", "8",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "cache-affinity router" in out
        assert "cache hit rate" in out and "cache fill bytes" in out

    def test_serve_cache_flag_hygiene(self, capsys):
        # A non-positive budget is meaningless, not "off".
        code = main([
            "serve", "--nodes", "2", "--cache-mb", "0", "--queries", "10",
        ])
        assert code == 2
        assert "--cache-mb must be positive" in capsys.readouterr().err
        code = main([
            "serve", "--nodes", "2", "--cache-mb", "-4", "--queries", "10",
        ])
        assert code == 2
        assert "--cache-mb must be positive" in capsys.readouterr().err
        # The tier is cluster-only: cache flags without --nodes > 1.
        code = main(["serve", "--cache-mb", "8", "--queries", "10"])
        assert code == 2
        assert "--nodes" in capsys.readouterr().err
        # A policy with no cache to govern.
        code = main([
            "serve", "--nodes", "2", "--cache-policy", "lru",
            "--queries", "10",
        ])
        assert code == 2
        assert "--cache-policy" in capsys.readouterr().err
        # The cache-aware router needs the tier it scores by...
        code = main([
            "serve", "--nodes", "2", "--router", "cache-affinity",
            "--queries", "10",
        ])
        assert code == 2
        assert "--cache-mb" in capsys.readouterr().err
        # ...and a fleet: cache-affinity + cache on one node is rejected.
        code = main([
            "serve", "--router", "cache-affinity", "--cache-mb", "8",
            "--queries", "10",
        ])
        assert code == 2
        assert "--nodes" in capsys.readouterr().err
        # Cache flags on the single-node switching mode are rejected.
        code = main([
            "serve", "--switching", "--cache-mb", "8", "--queries", "10",
        ])
        assert code == 2
        assert "single-node" in capsys.readouterr().err

    def test_serve_cache_with_failover_and_replication_edges(self, capsys):
        # The tier composes with the failure drill when replication holds
        # a surviving replica for every group...
        code = main([
            "serve", "--dataset", "kaggle", "--queries", "200", "--qps",
            "20000", "--nodes", "4", "--replication", "2",
            "--cache-mb", "8", "--fail-at", "0.002", "--fail-node", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "failed nodes" in out and "cache hit rate" in out
        # ...replication bounds are still enforced with cache flags set...
        code = main([
            "serve", "--nodes", "2", "--cache-mb", "8", "--replication",
            "3", "--queries", "10",
        ])
        assert code == 2
        assert "--replication" in capsys.readouterr().err
        # ...and so is the fail-node range check.
        code = main([
            "serve", "--nodes", "2", "--cache-mb", "8", "--fail-at", "0.1",
            "--fail-node", "5", "--queries", "10",
        ])
        assert code == 2
        assert "--fail-node" in capsys.readouterr().err

    def test_serve_autoscale_with_cache(self, capsys):
        code = main([
            "serve", "--dataset", "kaggle", "--queries", "400", "--qps",
            "30000", "--autoscale", "--nodes", "4", "--min-nodes", "2",
            "--replication", "2", "--cache-mb", "8", "--max-batch", "8",
            "--batch-timeout-ms", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "elastic cluster        : 2..4 nodes" in out
        assert "cache hit rate" in out

    def test_serve_switching(self, capsys):
        code = main([
            "serve", "--dataset", "kaggle", "--queries", "300", "--qps",
            "2000", "--switching", "--max-batch", "16",
            "--batch-timeout-ms", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "runtime representation switching" in out
        assert "switches" in out

    def test_serve_switching_flag_hygiene(self, capsys):
        # --switch-cooldown without --switching must not be silently eaten.
        code = main(["serve", "--switch-cooldown", "100", "--queries", "10"])
        assert code == 2
        assert "--switching" in capsys.readouterr().err
        # Switching is single-node; the cluster API handles fleets.
        code = main([
            "serve", "--switching", "--nodes", "2", "--queries", "10",
        ])
        assert code == 2
        assert "single-node" in capsys.readouterr().err
        # --switching builds its own deployment; a named scheduler clashes.
        code = main([
            "serve", "--switching", "--scheduler", "table-cpu",
            "--queries", "10",
        ])
        assert code == 2
        assert "--scheduler" in capsys.readouterr().err

    def test_serve_fastpath(self, capsys):
        code = main([
            "serve", "--fastpath", "--queries", "200", "--max-batch", "8",
            "--batch-timeout-ms", "1", "--shed-policy", "deadline-aware",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fast (array path)" in out
        assert "correct predictions/s" in out

    def test_serve_fastpath_matches_event_engine_output(self, capsys):
        flags = [
            "serve", "--queries", "300", "--qps", "5000", "--max-batch",
            "8", "--batch-timeout-ms", "2", "--shed-policy", "drop-late",
        ]
        assert main(flags) == 0
        event_out = capsys.readouterr().out
        assert main(flags + ["--fastpath"]) == 0
        fast_out = capsys.readouterr().out
        # Identical records => identical report, modulo the engine line.
        strip = lambda s: [  # noqa: E731
            line for line in s.splitlines() if not line.startswith("engine")
        ]
        assert strip(fast_out) == strip(event_out)

    def test_serve_fastpath_flag_hygiene(self, capsys):
        # The fast path is single-node and event-free: every mode that
        # injects events between batches must be rejected, not ignored.
        for flags, needle in [
            (["--nodes", "2"], "--nodes > 1"),
            (["--switching"], "--switching"),
            (["--autoscale", "--max-nodes", "2"], "--autoscale"),
            (["--autopilot", "--max-nodes", "2"], "--autopilot"),
        ]:
            code = main(["serve", "--fastpath", "--queries", "10"] + flags)
            assert code == 2
            err = capsys.readouterr().err
            assert needle in err and "--fastpath" in err

    def test_characterize(self, capsys):
        code = main(["characterize", "--dataset", "kaggle", "--batch", "256"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cpu-broadwell" in out and "hybrid" in out

    def test_generate_data(self, tmp_path, capsys):
        out_file = tmp_path / "synth.tsv"
        code = main([
            "generate-data", "--out", str(out_file), "--rows", "50",
            "--dataset", "kaggle-mini",
        ])
        assert code == 0
        lines = out_file.read_text().strip().split("\n")
        assert len(lines) == 50
        assert len(lines[0].split("\t")) == 1 + 13 + 26
