import numpy as np
import pytest

from repro.nn import EmbeddingTable, Linear, MLP
from repro.nn.gradcheck import check_module_gradients


class TestLinear:
    def test_forward_shape(self, rng):
        layer = Linear(5, 3, rng)
        out = layer(rng.standard_normal((7, 5)))
        assert out.shape == (7, 3)

    def test_forward_matches_matmul(self, rng):
        layer = Linear(4, 2, rng)
        x = rng.standard_normal((3, 4))
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(x), expected)

    def test_no_bias(self, rng):
        layer = Linear(4, 2, rng, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_rejects_wrong_input_dim(self, rng):
        layer = Linear(4, 2, rng)
        with pytest.raises(ValueError, match="expected input dim"):
            layer(rng.standard_normal((3, 5)))

    def test_rejects_nonpositive_dims(self, rng):
        with pytest.raises(ValueError):
            Linear(0, 2, rng)

    def test_gradients_match_numerical(self, rng):
        layer = Linear(4, 3, rng)
        check_module_gradients(layer, rng.standard_normal((5, 4)), rng)

    def test_flops(self, rng):
        layer = Linear(4, 3, rng)
        assert layer.flops(10) == 2 * 10 * 4 * 3

    def test_3d_input_batched(self, rng):
        layer = Linear(4, 3, rng)
        out = layer(rng.standard_normal((2, 5, 4)))
        assert out.shape == (2, 5, 3)

    def test_xavier_init_bounded(self, rng):
        layer = Linear(100, 100, rng)
        limit = np.sqrt(6.0 / 200)
        assert np.all(np.abs(layer.weight.data) <= limit)


class TestMLP:
    def test_forward_shape(self, rng):
        mlp = MLP([6, 12, 4], rng)
        assert mlp(rng.standard_normal((3, 6))).shape == (3, 4)

    def test_requires_two_sizes(self, rng):
        with pytest.raises(ValueError):
            MLP([5], rng)

    def test_hidden_relu_output_identity(self, rng):
        mlp = MLP([4, 8, 2], rng)
        x = rng.standard_normal((100, 4))
        out = mlp(x)
        # Identity output can be negative; a sigmoid output could not.
        assert (out < 0).any()

    def test_sigmoid_output_bounded(self, rng):
        mlp = MLP([4, 8, 2], rng, output_activation="sigmoid")
        out = mlp(rng.standard_normal((50, 4)))
        assert np.all((out > 0) & (out < 1))

    def test_gradients_match_numerical(self, rng):
        mlp = MLP([3, 6, 2], rng)
        check_module_gradients(mlp, rng.standard_normal((4, 3)), rng)

    def test_flops_sums_layers(self, rng):
        mlp = MLP([3, 6, 2], rng)
        assert mlp.flops(5) == 2 * 5 * (3 * 6 + 6 * 2)

    def test_deep_stack(self, rng):
        mlp = MLP([4, 8, 8, 8, 1], rng)
        assert mlp(rng.standard_normal((2, 4))).shape == (2, 1)


class TestEmbeddingTable:
    def test_lookup_shape(self, rng):
        table = EmbeddingTable(10, 4, rng)
        out = table(np.array([0, 3, 9]))
        assert out.shape == (3, 4)

    def test_lookup_returns_rows(self, rng):
        table = EmbeddingTable(10, 4, rng)
        out = table(np.array([2]))
        np.testing.assert_array_equal(out[0], table.weight.data[2])

    def test_2d_ids(self, rng):
        table = EmbeddingTable(10, 4, rng)
        out = table(np.zeros((5, 3), dtype=int))
        assert out.shape == (5, 3, 4)

    def test_out_of_range_raises(self, rng):
        table = EmbeddingTable(10, 4, rng)
        with pytest.raises(IndexError):
            table(np.array([10]))
        with pytest.raises(IndexError):
            table(np.array([-1]))

    def test_backward_scatter_adds(self, rng):
        table = EmbeddingTable(10, 4, rng)
        ids = np.array([1, 1, 3])
        table(ids)
        grad = np.ones((3, 4))
        table.backward(grad)
        np.testing.assert_allclose(table.weight.grad[1], 2.0 * np.ones(4))
        np.testing.assert_allclose(table.weight.grad[3], np.ones(4))
        np.testing.assert_allclose(table.weight.grad[0], np.zeros(4))

    def test_bytes(self, rng):
        table = EmbeddingTable(100, 8, rng)
        assert table.bytes() == 100 * 8 * 4

    def test_rejects_bad_dims(self, rng):
        with pytest.raises(ValueError):
            EmbeddingTable(0, 4, rng)
