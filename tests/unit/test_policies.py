import pytest

from repro.serving.policies import (
    POLICY_NAMES,
    DeadlineAware,
    DropLate,
    NoShed,
    ShedPolicy,
    make_policy,
)


class TestMakePolicy:
    def test_builtin_names(self):
        for name in POLICY_NAMES:
            policy = make_policy(name)
            assert isinstance(policy, ShedPolicy)
            assert policy.name == name

    def test_none_means_no_shedding(self):
        assert isinstance(make_policy(None), NoShed)

    def test_instance_passthrough(self):
        policy = DeadlineAware(slack=1.5)
        assert make_policy(policy) is policy

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_policy("random")


class TestNoShed:
    def test_admits_everything(self):
        policy = NoShed()
        assert policy.admit(wait_s=10.0, service_s=10.0, sla_s=0.001)


class TestDropLate:
    def test_admits_within_wait_budget(self):
        policy = DropLate()
        assert policy.admit(wait_s=0.009, service_s=0.5, sla_s=0.010)
        assert policy.admit(wait_s=0.010, service_s=0.5, sla_s=0.010)

    def test_sheds_when_wait_alone_exceeds_sla(self):
        assert not DropLate().admit(wait_s=0.011, service_s=0.0, sla_s=0.010)

    def test_ignores_service_time(self):
        """drop-late is the seed semantics: only queue wait matters."""
        assert DropLate().admit(wait_s=0.0, service_s=99.0, sla_s=0.010)


class TestDeadlineAware:
    def test_sheds_projected_misses(self):
        policy = DeadlineAware()
        assert policy.admit(wait_s=0.004, service_s=0.005, sla_s=0.010)
        assert not policy.admit(wait_s=0.004, service_s=0.007, sla_s=0.010)

    def test_sheds_slow_service_even_with_no_wait(self):
        """Stricter than drop-late: a query that would start instantly but
        finish late is refused."""
        assert not DeadlineAware().admit(wait_s=0.0, service_s=0.02, sla_s=0.010)

    def test_slack_loosens_the_deadline(self):
        loose = DeadlineAware(slack=2.0)
        assert loose.admit(wait_s=0.004, service_s=0.014, sla_s=0.010)

    def test_rejects_non_positive_slack(self):
        with pytest.raises(ValueError):
            DeadlineAware(slack=0.0)
