import pytest

from repro.core.mp_cache import CacheEffect
from repro.core.representations import paper_configs
from repro.experiments.setup import (
    HW1,
    HW2,
    build_plan,
    build_schedulers,
    dataset_for,
    default_cache_effect,
    hw1_devices,
    hw2_devices,
)
from repro.hardware.device import GB, MB
from repro.models.configs import KAGGLE, KAGGLE_MINI, TERABYTE


class TestDesignPoints:
    def test_hw1_budgets(self):
        cpu, gpu = hw1_devices()
        assert cpu.dram_capacity == 32 * GB
        assert gpu.dram_capacity == 32 * GB

    def test_hw2_budgets(self):
        cpu, gpu = hw2_devices()
        assert cpu.dram_capacity == 1 * GB
        assert gpu.dram_capacity == 200 * MB

    def test_config_names(self):
        assert HW1.name == "HW-1" and HW2.name == "HW-2"


class TestDatasetFor:
    def test_known(self):
        assert dataset_for(KAGGLE) == "kaggle"
        assert dataset_for(TERABYTE) == "terabyte"
        assert dataset_for(KAGGLE_MINI) == "kaggle"

    def test_unknown_maps_to_internal(self):
        from repro.data.internal_like import INTERNAL_LIKE

        assert dataset_for(INTERNAL_LIKE) == "internal"


class TestCacheEffect:
    def test_effect_is_valid_and_meaningful(self):
        rep = paper_configs(KAGGLE)["dhe"]
        effect = default_cache_effect(KAGGLE, rep)
        assert isinstance(effect, CacheEffect)
        assert 0.3 < effect.encoder_hit_rate < 1.0
        assert effect.decoder_speedup > 1.5

    def test_bigger_cache_higher_hit_rate(self):
        rep = paper_configs(KAGGLE)["dhe"]
        small = default_cache_effect(KAGGLE, rep, capacity_bytes=2 * 1024)
        large = default_cache_effect(KAGGLE, rep, capacity_bytes=2 * MB)
        assert large.encoder_hit_rate > small.encoder_hit_rate


class TestBuildSchedulers:
    def test_hw1_has_all_contenders(self):
        schedulers = build_schedulers(KAGGLE)
        expected = {
            "table-cpu", "table-gpu", "dhe-cpu", "dhe-gpu", "hybrid-cpu",
            "hybrid-gpu", "table-switch", "mp-rec",
        }
        assert expected <= set(schedulers)

    def test_hw2_drops_oversized_statics(self):
        schedulers = build_schedulers(KAGGLE, hw2_devices())
        assert "table-gpu" not in schedulers  # 2.16 GB > 200 MB
        assert "hybrid-gpu" not in schedulers
        assert "mp-rec" in schedulers

    def test_plan_reused_by_mp_rec(self):
        plan = build_plan(KAGGLE)
        schedulers = build_schedulers(KAGGLE)
        mp = schedulers["mp-rec"]
        assert len(mp.paths) == sum(len(reps) for reps in plan.mappings.values())
