import numpy as np
import pytest

from repro.nn import Adagrad, Parameter, SGD


def quadratic_params(rng):
    """One parameter whose loss is ||p||^2 (gradient = 2p)."""
    return Parameter(rng.standard_normal(5) + 3.0)


class TestSGD:
    def test_step_moves_against_gradient(self, rng):
        p = quadratic_params(rng)
        before = p.data.copy()
        p.grad[...] = 2 * p.data
        SGD([p], lr=0.1).step()
        assert np.linalg.norm(p.data) < np.linalg.norm(before)

    def test_converges_on_quadratic(self, rng):
        p = quadratic_params(rng)
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            p.grad[...] = 2 * p.data
            opt.step()
        assert np.linalg.norm(p.data) < 1e-6

    def test_momentum_accelerates(self, rng):
        losses = {}
        for momentum in (0.0, 0.9):
            p = Parameter(np.full(3, 10.0))
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(50):
                opt.zero_grad()
                p.grad[...] = 2 * p.data
                opt.step()
            losses[momentum] = float(np.sum(p.data**2))
        assert losses[0.9] < losses[0.0]

    def test_rejects_bad_lr(self, rng):
        with pytest.raises(ValueError):
            SGD([quadratic_params(rng)], lr=0.0)

    def test_rejects_bad_momentum(self, rng):
        with pytest.raises(ValueError):
            SGD([quadratic_params(rng)], lr=0.1, momentum=1.0)

    def test_rejects_empty_params(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdagrad:
    def test_converges_on_quadratic(self, rng):
        p = quadratic_params(rng)
        opt = Adagrad([p], lr=1.0)
        for _ in range(300):
            opt.zero_grad()
            p.grad[...] = 2 * p.data
            opt.step()
        assert np.linalg.norm(p.data) < 0.05

    def test_adapts_per_coordinate(self):
        # Coordinate 0 gets big gradients, coordinate 1 small ones; Adagrad
        # should shrink the effective step more for coordinate 0.
        p = Parameter(np.array([1.0, 1.0]))
        opt = Adagrad([p], lr=0.1)
        p.grad[...] = np.array([100.0, 0.01])
        opt.step()
        step = np.abs(1.0 - p.data)
        # Both steps ~lr because of normalization on the first step.
        np.testing.assert_allclose(step, [0.1, 0.1], rtol=1e-4)
        # Second identical gradient: accumulated history halves the step.
        p.grad[...] = np.array([100.0, 0.01])
        opt.step()
        second_step = np.abs(1.0 - 0.1 - p.data)
        assert np.all(second_step < step)

    def test_zero_grad_clears(self, rng):
        p = quadratic_params(rng)
        p.grad += 1.0
        Adagrad([p], lr=0.1).zero_grad()
        assert np.all(p.grad == 0)
