import numpy as np
import pytest

from repro.nn import EmbeddingBag
from repro.nn.gradcheck import numerical_gradient


class TestEmbeddingBagForward:
    def test_sum_pooling(self, rng):
        bag = EmbeddingBag(10, 4, rng, mode="sum")
        ids = np.array([1, 2, 3, 7])
        offsets = np.array([0, 2])  # bags: {1,2}, {3,7}
        out = bag(ids, offsets)
        w = bag.weight.data
        np.testing.assert_allclose(out[0], w[1] + w[2])
        np.testing.assert_allclose(out[1], w[3] + w[7])

    def test_mean_pooling(self, rng):
        bag = EmbeddingBag(10, 4, rng, mode="mean")
        out = bag(np.array([1, 2, 3]), np.array([0, 2]))
        w = bag.weight.data
        np.testing.assert_allclose(out[0], (w[1] + w[2]) / 2)
        np.testing.assert_allclose(out[1], w[3])

    def test_empty_bag_is_zero(self, rng):
        bag = EmbeddingBag(10, 4, rng)
        out = bag(np.array([5]), np.array([0, 1]))  # second bag empty
        np.testing.assert_array_equal(out[1], np.zeros(4))

    def test_single_id_bags_match_table(self, rng):
        bag = EmbeddingBag(10, 4, rng)
        ids = np.array([0, 4, 9])
        out = bag(ids, np.arange(3))
        np.testing.assert_array_equal(out, bag.weight.data[ids])

    def test_validation(self, rng):
        bag = EmbeddingBag(10, 4, rng)
        with pytest.raises(ValueError):
            bag(np.array([1]), np.array([1]))  # offsets must start at 0
        with pytest.raises(IndexError):
            bag(np.array([10]), np.array([0]))
        with pytest.raises(ValueError):
            EmbeddingBag(10, 4, rng, mode="max")


class TestEmbeddingBagBackward:
    @pytest.mark.parametrize("mode", ["sum", "mean"])
    def test_gradients_match_numerical(self, mode, rng):
        bag = EmbeddingBag(8, 3, rng, mode=mode)
        ids = np.array([0, 1, 1, 5, 7])
        offsets = np.array([0, 3, 3])  # bags of sizes 3, 0, 2
        out = bag(ids, offsets)
        probe = rng.standard_normal(out.shape)
        bag.zero_grad()
        bag.backward(probe)

        def loss_of(weights):
            saved = bag.weight.data.copy()
            bag.weight.data = weights
            val = float(np.sum(bag(ids, offsets) * probe))
            bag.weight.data = saved
            return val

        num = numerical_gradient(loss_of, bag.weight.data.copy())
        np.testing.assert_allclose(bag.weight.grad, num, atol=1e-7)

    def test_duplicate_ids_accumulate(self, rng):
        bag = EmbeddingBag(8, 3, rng, mode="sum")
        bag(np.array([2, 2]), np.array([0]))
        bag.zero_grad()
        bag.backward(np.ones((1, 3)))
        np.testing.assert_allclose(bag.weight.grad[2], 2 * np.ones(3))
