"""The array fast path: batch planning, fallbacks, and façade wiring.

Record-for-record parity with the event kernel across the supported
configuration space lives in ``tests/property/test_prop_engine_parity.py``;
this file pins the pieces property tests reach poorly — batch-plan edge
cases, the graceful fallbacks for scheduler/policy *subclasses*, the
``serve_arrays`` column entry point, and the façade's rejection of
event-only features.
"""

import numpy as np
import pytest

from repro.core.online import StaticScheduler
from repro.data.queries import (
    Query,
    QuerySet,
    generate_query_arrays,
    generate_query_set,
)
from repro.hardware.catalog import CPU_BROADWELL, GPU_V100
from repro.serving.fastpath import plan_batches, serve_arrays
from repro.serving.policies import ShedPolicy
from repro.serving.simulator import ServingSimulator
from repro.serving.workload import ServingScenario

from tests.property.test_prop_engine_parity import (
    build_scenario,
    build_scheduler,
)
from tests.unit.test_online import fake_path


class TestPlanBatches:
    def test_empty_stream(self):
        starts, ends, times = plan_batches(np.empty(0), 8, 0.001)
        assert starts.size == ends.size == times.size == 0

    def test_batch_size_one_is_per_query(self):
        arrivals = np.array([0.0, 0.5, 0.9])
        starts, ends, times = plan_batches(arrivals, 1, 0.001)
        assert starts.tolist() == [0, 1, 2]
        assert ends.tolist() == [1, 2, 3]
        assert times.tolist() == arrivals.tolist()

    def test_full_batch_dispatches_at_filling_arrival(self):
        arrivals = np.array([0.0, 0.001, 0.002, 0.003])
        starts, ends, times = plan_batches(arrivals, 4, 1.0)
        assert starts.tolist() == [0] and ends.tolist() == [4]
        assert times.tolist() == [0.003]

    def test_flush_dispatches_at_deadline(self):
        arrivals = np.array([0.0, 0.001, 0.5])
        starts, ends, times = plan_batches(arrivals, 8, 0.004)
        assert starts.tolist() == [0, 2]
        assert ends.tolist() == [2, 3]
        assert times.tolist() == [0.004, 0.504]

    def test_same_instant_arrivals_fill_before_timer(self):
        # Five arrivals at t=0 with B=4: the first four fill a batch at
        # t=0; the fifth flushes alone at its deadline.
        arrivals = np.zeros(5)
        starts, ends, times = plan_batches(arrivals, 4, 0.002)
        assert list(zip(starts.tolist(), ends.tolist())) == [(0, 4), (4, 5)]
        assert times.tolist() == [0.0, 0.002]

    def test_zero_timeout_groups_only_simultaneous(self):
        arrivals = np.array([0.0, 0.0, 0.1])
        starts, ends, times = plan_batches(arrivals, 8, 0.0)
        assert list(zip(starts.tolist(), ends.tolist())) == [(0, 2), (2, 3)]
        assert times.tolist() == [0.0, 0.1]


class ShedEverySecond(ShedPolicy):
    """A policy subclass the fast path cannot vectorize."""

    name = "every-second"

    def __init__(self):
        self._count = 0

    def admit(self, wait_s, service_s, sla_s):
        self._count += 1
        return self._count % 2 == 1


class PickyStatic(StaticScheduler):
    """A scheduler subclass: forces the select_batch fallback router."""


class TestFallbacks:
    def test_scheduler_subclass_falls_back_to_select_batch(self):
        scenario = build_scenario([0.001] * 12, [64] * 12, 0.010)
        paths = [fake_path("table", CPU_BROADWELL, 78.79, 2e-3, label="T")]
        event = ServingSimulator(
            PickyStatic(list(paths)), max_batch_size=4, batch_timeout_s=0.002
        )
        fast = ServingSimulator(
            PickyStatic(list(paths)), max_batch_size=4,
            batch_timeout_s=0.002, engine="fast",
        )
        assert fast.run(scenario).records == event.run(scenario).records

    def test_policy_subclass_falls_back_to_per_member_admit(self):
        scenario = build_scenario([0.001] * 12, [64] * 12, 0.010)
        event = ServingSimulator(
            build_scheduler("multi"), shed_policy=ShedEverySecond(),
            max_batch_size=4, batch_timeout_s=0.002,
        )
        fast = ServingSimulator(
            build_scheduler("multi"), shed_policy=ShedEverySecond(),
            max_batch_size=4, batch_timeout_s=0.002, engine="fast",
        )
        assert fast.run(scenario).records == event.run(scenario).records


class TestServeArrays:
    def test_matches_object_path_records(self):
        arrays = generate_query_arrays(n_queries=400, qps=5000.0, seed=3)
        qs = generate_query_set(n_queries=400, qps=5000.0, seed=3)
        scheduler = build_scheduler("multi")
        result = serve_arrays(
            scheduler, arrays, sla_s=0.010, shed_policy="deadline-aware",
            max_batch_size=8, batch_timeout_s=0.001, streaming=False,
        )
        sim = ServingSimulator(
            build_scheduler("multi"), shed_policy="deadline-aware",
            max_batch_size=8, batch_timeout_s=0.001, engine="fast",
        )
        expected = sim.run(ServingScenario(queries=qs, sla_s=0.010))
        assert result.records == expected.records

    def test_streaming_default_returns_streaming_metrics(self):
        arrays = generate_query_arrays(n_queries=100, qps=5000.0, seed=3)
        metrics = serve_arrays(build_scheduler("static"), arrays)
        assert metrics.n == 100
        assert not hasattr(metrics, "records")

    def test_unsorted_stream_is_sorted_first(self):
        queries = [
            Query(index=0, size=10, arrival_s=0.005),
            Query(index=1, size=20, arrival_s=0.001),
        ]
        arrays = QuerySet(queries=queries).as_arrays()
        result = serve_arrays(
            build_scheduler("static"), arrays, streaming=False
        )
        assert [r.index for r in result.records] == [1, 0]

    def test_empty_stream(self):
        arrays = generate_query_arrays(n_queries=0)
        metrics = serve_arrays(build_scheduler("static"), arrays)
        assert metrics.n == 0

    def test_rejects_bad_batch_args(self):
        arrays = generate_query_arrays(n_queries=10)
        with pytest.raises(ValueError):
            serve_arrays(build_scheduler("static"), arrays, max_batch_size=0)
        with pytest.raises(ValueError):
            serve_arrays(
                build_scheduler("static"), arrays, batch_timeout_s=-1.0
            )

    def test_energy_apportioned_like_kernel(self):
        arrays = generate_query_arrays(n_queries=200, qps=5000.0, seed=4)
        result = serve_arrays(
            build_scheduler("multi"), arrays, max_batch_size=8,
            batch_timeout_s=0.001, track_energy=True, streaming=False,
        )
        assert sum(r.energy_j for r in result.records) > 0.0


class TestFacade:
    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="engine"):
            ServingSimulator(build_scheduler("static"), engine="warp")

    def test_rejects_switching_on_fast_engine(self):
        class FakeController:
            pass

        with pytest.raises(ValueError, match="switching"):
            ServingSimulator(
                build_scheduler("static"), engine="fast",
                switch_controller=FakeController(),
            )

    def test_fast_engine_runs_both_sinks(self):
        scenario = build_scenario([0.001] * 10, [32] * 10, 0.010)
        sim = ServingSimulator(build_scheduler("multi"), engine="fast")
        exact = sim.run(scenario)
        stream = sim.run_streaming(scenario)
        assert len(exact.records) == 10
        assert stream.raw_throughput == exact.raw_throughput
