import numpy as np
import pytest

from repro.models import DLRM, build_dlrm
from repro.models.configs import ModelConfig
from repro.nn.gradcheck import numerical_gradient
from repro.nn.losses import bce_with_logits

REPRESENTATIONS = ["table", "dhe", "select", "hybrid"]


def batch_for(config, rng, n=4):
    dense = rng.standard_normal((n, config.n_dense))
    sparse = np.stack(
        [rng.integers(0, rows, size=n) for rows in config.cardinalities], axis=1
    )
    return dense, sparse


class TestBuildDLRM:
    @pytest.mark.parametrize("rep", REPRESENTATIONS)
    def test_forward_shape(self, rep, tiny_config, rng):
        model = build_dlrm(tiny_config, rep, rng, k=8, dnn=8, h=1)
        dense, sparse = batch_for(tiny_config, rng)
        assert model(dense, sparse).shape == (4,)

    @pytest.mark.parametrize("rep", REPRESENTATIONS)
    def test_predict_proba_range(self, rep, tiny_config, rng):
        model = build_dlrm(tiny_config, rep, rng, k=8, dnn=8, h=1)
        dense, sparse = batch_for(tiny_config, rng)
        probs = model.predict_proba(dense, sparse)
        assert np.all((probs > 0) & (probs < 1))

    def test_unknown_representation(self, tiny_config, rng):
        with pytest.raises(ValueError):
            build_dlrm(tiny_config, "tt-rec", rng)

    def test_select_replaces_largest_tables(self, tiny_config, rng):
        model = build_dlrm(tiny_config, "select", rng, k=8, dnn=8, h=1)
        kinds = [f.use_dhe for f in model.embeddings.features]
        # Largest cardinalities are 11 (idx 1), 7 (idx 0), 5 (idx 2) — all 3
        # replaced since the default replaces the top 3.
        assert sum(kinds) == 3

    def test_select_custom_features(self, tiny_config, rng):
        model = build_dlrm(
            tiny_config, "select", rng, k=8, dnn=8, h=1, dhe_features={1}
        )
        flags = [f.use_dhe for f in model.embeddings.features]
        assert flags == [False, True, False]

    def test_hybrid_dim_split(self, tiny_config, rng):
        model = build_dlrm(
            tiny_config, "hybrid", rng, k=8, dnn=8, h=1, table_dim=2, dhe_dim=4
        )
        assert model.embeddings.output_dim == 6

    def test_flops_ordering(self, tiny_config, rng):
        flops = {}
        for rep in REPRESENTATIONS:
            kwargs = {"dhe_features": {1}} if rep == "select" else {}
            model = build_dlrm(tiny_config, rep, rng, k=8, dnn=8, h=1, **kwargs)
            flops[rep] = model.flops_per_sample()
        assert flops["table"] < flops["select"] < flops["dhe"]
        assert flops["hybrid"] > flops["table"]


class TestGradients:
    @pytest.mark.parametrize("rep", REPRESENTATIONS)
    def test_full_model_gradcheck(self, rep, tiny_config, rng):
        """End-to-end analytic grads vs. numerical, through the BCE loss."""
        model = build_dlrm(tiny_config, rep, rng, k=4, dnn=6, h=1)
        dense, sparse = batch_for(tiny_config, rng, n=3)
        labels = (rng.random(3) > 0.5).astype(float)

        logits = model(dense, sparse)
        _, grad_logits = bce_with_logits(logits, labels)
        model.zero_grad()
        model.backward(grad_logits)

        checked = 0
        for name, param in model.named_parameters():
            if param.size > 200:  # keep the numerical pass fast
                continue
            def loss_of(p_val, _param=param):
                saved = _param.data.copy()
                _param.data = p_val
                val, _ = bce_with_logits(model(dense, sparse), labels)
                _param.data = saved
                return val

            num = numerical_gradient(loss_of, param.data.copy(), eps=1e-5)
            np.testing.assert_allclose(
                param.grad, num, atol=1e-5, rtol=1e-3, err_msg=name
            )
            checked += 1
        assert checked >= 3


class TestValidation:
    def test_mismatched_bottom_dim_rejected(self, tiny_config, rng):
        from repro.embeddings import EmbeddingCollection, TableEmbedding
        from repro.nn.layers import MLP

        emb = EmbeddingCollection([TableEmbedding(5, 6, rng)])
        bottom = MLP([4, 8], rng)  # outputs 8 != embedding dim 6
        top = MLP([7, 1], rng)
        with pytest.raises(ValueError, match="bottom MLP output dim"):
            DLRM(bottom, emb, top)

    def test_mismatched_top_dim_rejected(self, rng):
        from repro.embeddings import EmbeddingCollection, TableEmbedding
        from repro.nn.layers import MLP

        emb = EmbeddingCollection([TableEmbedding(5, 6, rng)])
        bottom = MLP([4, 6], rng)
        top = MLP([99, 1], rng)
        with pytest.raises(ValueError, match="top MLP input dim"):
            DLRM(bottom, emb, top)
