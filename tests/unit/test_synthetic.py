import numpy as np
import pytest

from repro.data.synthetic import SyntheticCTRDataset, make_dataset
from repro.models.configs import KAGGLE_MINI


class TestSyntheticCTRDataset:
    def test_batch_shapes(self, small_config):
        ds = SyntheticCTRDataset(small_config, seed=0)
        batch = ds.sample_batch(32)
        assert batch.dense.shape == (32, small_config.n_dense)
        assert batch.sparse.shape == (32, small_config.n_sparse)
        assert batch.labels.shape == (32,)
        assert len(batch) == 32

    def test_ids_within_cardinalities(self, small_config):
        ds = SyntheticCTRDataset(small_config, seed=0)
        batch = ds.sample_batch(1000)
        for f, rows in enumerate(small_config.cardinalities):
            assert batch.sparse[:, f].max() < rows
            assert batch.sparse[:, f].min() >= 0

    def test_labels_binary(self, small_config):
        ds = SyntheticCTRDataset(small_config, seed=0)
        labels = ds.sample_batch(1000).labels
        assert set(np.unique(labels)) <= {0.0, 1.0}

    def test_ctr_in_plausible_range(self, small_config):
        ds = SyntheticCTRDataset(small_config, seed=0)
        ctr = ds.sample_batch(20_000).labels.mean()
        assert 0.10 < ctr < 0.60

    def test_labels_are_learnable_signal(self, small_config):
        # The Bayes-optimal classifier must beat the base rate by a margin —
        # otherwise no representation comparison is meaningful.
        ds = SyntheticCTRDataset(small_config, seed=0)
        bayes = ds.bayes_accuracy(20_000)
        base_rate = max(
            ds.sample_batch(20_000).labels.mean(),
            1 - ds.sample_batch(20_000).labels.mean(),
        )
        assert bayes > base_rate + 0.03

    def test_dense_features_nonnegative(self, small_config):
        # log1p(lognormal) preprocessing keeps dense features >= 0.
        ds = SyntheticCTRDataset(small_config, seed=0)
        assert ds.sample_batch(100).dense.min() >= 0

    def test_deterministic_given_seed(self, small_config):
        a = SyntheticCTRDataset(small_config, seed=9).sample_batch(16)
        b = SyntheticCTRDataset(small_config, seed=9).sample_batch(16)
        np.testing.assert_array_equal(a.sparse, b.sparse)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_latent_capping_for_huge_tables(self):
        ds = SyntheticCTRDataset(KAGGLE_MINI, seed=0, max_latent_rows=100)
        batch = ds.sample_batch(64)  # must not allocate 10M-row latents
        assert batch.sparse.shape == (64, 26)

    def test_make_dataset_helper(self, small_config):
        ds = make_dataset(small_config, seed=1, latent_dim=4)
        assert ds.latent_dim == 4
