import pytest

from repro.core.representations import paper_configs
from repro.core.splitting import split_latency, split_query_even, split_query_tuned
from repro.hardware.catalog import CPU_BROADWELL, GPU_V100
from repro.hardware.latency import path_latency
from repro.models.configs import KAGGLE

CFGS = paper_configs(KAGGLE)


class TestSplitLatency:
    def test_all_on_first_matches_single_device(self):
        outcome = split_latency(
            CFGS["table"], KAGGLE, CPU_BROADWELL, GPU_V100, 512, 1.0
        )
        direct = path_latency(CFGS["table"], KAGGLE, CPU_BROADWELL, 512)
        assert outcome.latency_s == pytest.approx(direct)
        assert outcome.second_latency_s == 0.0

    def test_concurrent_halves_max(self):
        outcome = split_latency(
            CFGS["table"], KAGGLE, CPU_BROADWELL, GPU_V100, 1000, 0.5
        )
        assert outcome.latency_s == max(
            outcome.first_latency_s, outcome.second_latency_s
        )

    def test_rejects_bad_ratio(self):
        with pytest.raises(ValueError):
            split_latency(CFGS["table"], KAGGLE, CPU_BROADWELL, GPU_V100, 100, 1.5)


class TestPaperSection65:
    def test_even_split_helps_table_vs_cpu_only(self):
        """Fig 14: for tables, splitting beats the CPU-side baseline (it
        offloads half the samples to the GPU)."""
        n = 4096
        split = split_query_even(CFGS["table"], KAGGLE, CPU_BROADWELL, GPU_V100, n)
        cpu_only = path_latency(CFGS["table"], KAGGLE, CPU_BROADWELL, n)
        assert split.latency_s < cpu_only

    def test_tuned_table_split_beats_even(self):
        """With asymmetric devices the tuned ratio clearly beats 50/50."""
        n = 4096
        even = split_query_even(CFGS["table"], KAGGLE, CPU_BROADWELL, GPU_V100, n)
        tuned = split_query_tuned(CFGS["table"], KAGGLE, CPU_BROADWELL, GPU_V100, n)
        assert tuned.latency_s < even.latency_s * 0.8

    def test_even_split_hurts_dhe(self):
        """Fig 14: an even split forces CPU execution of the compute stack,
        making the CPU half the critical path."""
        n = 1024
        split = split_query_even(CFGS["dhe"], KAGGLE, CPU_BROADWELL, GPU_V100, n)
        gpu_only = path_latency(CFGS["dhe"], KAGGLE, GPU_V100, n)
        assert split.latency_s > gpu_only
        assert split.first_latency_s > split.second_latency_s  # CPU binds

    def test_tuned_split_never_worse_than_even(self):
        for rep_name in ("table", "dhe", "hybrid"):
            tuned = split_query_tuned(
                CFGS[rep_name], KAGGLE, CPU_BROADWELL, GPU_V100, 2048
            )
            even = split_query_even(
                CFGS[rep_name], KAGGLE, CPU_BROADWELL, GPU_V100, 2048
            )
            assert tuned.latency_s <= even.latency_s + 1e-12

    def test_tuned_split_for_dhe_avoids_cpu(self):
        tuned = split_query_tuned(CFGS["dhe"], KAGGLE, CPU_BROADWELL, GPU_V100, 2048)
        assert tuned.ratio_on_first < 0.2  # nearly everything on the GPU

    def test_tuned_grid_validation(self):
        with pytest.raises(ValueError):
            split_query_tuned(CFGS["table"], KAGGLE, CPU_BROADWELL, GPU_V100, 10, grid=1)


class TestSplitServing:
    def scenario(self, n=50, qps=500.0):
        from repro.serving.workload import ServingScenario

        return ServingScenario.paper_default(n_queries=n, qps=qps, seed=9)

    def test_serves_every_query(self):
        from repro.core.splitting import simulate_split_serving

        scenario = self.scenario()
        result = simulate_split_serving(
            CFGS["table"], KAGGLE, CPU_BROADWELL, GPU_V100, scenario, 78.79
        )
        assert len(result.records) == len(scenario.queries)
        assert result.correct_prediction_throughput > 0

    def test_split_table_beats_cpu_only_serving(self):
        from repro.core.online import StaticScheduler
        from repro.core.profiler import make_path
        from repro.core.splitting import simulate_split_serving
        from repro.serving.simulator import ServingSimulator

        scenario = self.scenario(n=200, qps=1000.0)
        split = simulate_split_serving(
            CFGS["table"], KAGGLE, CPU_BROADWELL, GPU_V100, scenario, 78.79
        )
        cpu_path = make_path(CFGS["table"], KAGGLE, CPU_BROADWELL, 78.79)
        cpu_only = ServingSimulator(
            StaticScheduler([cpu_path]), track_energy=False
        ).run(scenario)
        assert (
            split.correct_prediction_throughput
            > cpu_only.correct_prediction_throughput
        )

    def test_devices_occupied_concurrently(self):
        """Both halves start together: a query's finish equals the max of
        the device busy intervals, not their sum."""
        from repro.core.splitting import simulate_split_serving, split_latency

        scenario = self.scenario(n=1)
        query = scenario.queries.queries[0]
        result = simulate_split_serving(
            CFGS["table"], KAGGLE, CPU_BROADWELL, GPU_V100, scenario, 78.79
        )
        outcome = split_latency(
            CFGS["table"], KAGGLE, CPU_BROADWELL, GPU_V100, query.size, 0.5
        )
        assert result.records[0].latency_s == pytest.approx(outcome.latency_s)
