import numpy as np
import pytest

from repro.embeddings.collection import EmbeddingCollection
from repro.embeddings.mixed_dim import (
    MixedDimEmbedding,
    mixed_dim_bytes,
    mixed_dimensions,
)
from repro.models.configs import KAGGLE
from repro.nn.gradcheck import numerical_gradient


class TestMixedDimensions:
    def test_bigger_tables_get_smaller_dims(self):
        dims = mixed_dimensions([10, 1000, 100_000], base_dim=32)
        assert dims[0] >= dims[1] >= dims[2]

    def test_dims_are_powers_of_two_within_bounds(self):
        dims = mixed_dimensions(KAGGLE.cardinalities, base_dim=16)
        for d in dims:
            assert 2 <= d <= 16
            assert d & (d - 1) == 0

    def test_alpha_zero_uniform(self):
        dims = mixed_dimensions([10, 10_000], base_dim=16, alpha=0.0)
        assert dims == [16, 16]

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            mixed_dimensions([10], 16, alpha=2.0)

    def test_compression_vs_uniform(self):
        md = mixed_dim_bytes(KAGGLE.cardinalities, base_dim=16, alpha=0.4)
        uniform = sum(rows * 16 * 4 for rows in KAGGLE.cardinalities)
        assert md < uniform / 2


class TestMixedDimEmbedding:
    def test_projects_to_output_dim(self, rng):
        emb = MixedDimEmbedding(100, native_dim=4, output_dim=16, rng=rng)
        assert emb(np.array([0, 5])).shape == (2, 16)

    def test_full_dim_skips_projection(self, rng):
        emb = MixedDimEmbedding(100, native_dim=16, output_dim=16, rng=rng)
        assert emb.projection is None
        assert emb.flops_per_lookup() == 0

    def test_native_exceeding_output_rejected(self, rng):
        with pytest.raises(ValueError):
            MixedDimEmbedding(100, native_dim=32, output_dim=16, rng=rng)

    def test_gradients_match_numerical(self, rng):
        emb = MixedDimEmbedding(20, native_dim=3, output_dim=6, rng=rng)
        ids = np.array([1, 7, 7])
        out = emb(ids)
        probe = rng.standard_normal(out.shape)
        emb.zero_grad()
        emb.backward(probe)
        for name, param in emb.named_parameters():
            def loss_of(p_val, _param=param):
                saved = _param.data.copy()
                _param.data = p_val
                val = float(np.sum(emb(ids) * probe))
                _param.data = saved
                return val

            num = numerical_gradient(loss_of, param.data.copy())
            np.testing.assert_allclose(
                param.grad, num, atol=1e-6, rtol=1e-4, err_msg=name
            )

    def test_mixes_into_collection(self, rng):
        dims = mixed_dimensions([50, 5000], base_dim=8)
        features = [
            MixedDimEmbedding(rows, d, 8, rng)
            for rows, d in zip([50, 5000], dims)
        ]
        coll = EmbeddingCollection(features)
        out = coll(np.zeros((3, 2), dtype=int))
        assert out.shape == (3, 2, 8)

    def test_bytes_accounting(self, rng):
        emb = MixedDimEmbedding(100, native_dim=4, output_dim=16, rng=rng)
        assert emb.bytes() == 100 * 4 * 4 + 4 * 16 * 4
