import numpy as np
import pytest

from repro.data.zipf import ZipfSampler


class TestZipfSampler:
    def test_samples_in_range(self):
        sampler = ZipfSampler(n=100, alpha=1.05, seed=0)
        ids = sampler.sample(10_000)
        assert ids.min() >= 0 and ids.max() < 100

    def test_head_is_hot(self):
        sampler = ZipfSampler(n=10_000, alpha=1.05, seed=0)
        ids = sampler.sample(50_000)
        counts = np.bincount(ids, minlength=10_000)
        # The hottest ID should dwarf the median ID (paper Fig 16a).
        assert counts[0] > 100 * max(1, int(np.median(counts)))

    def test_power_law_slope(self):
        sampler = ZipfSampler(n=100_000, alpha=1.2, seed=1)
        ids = sampler.sample(200_000)
        counts = np.sort(np.bincount(ids, minlength=100_000))[::-1]
        top = counts[:50].astype(float)
        ranks = np.arange(1, 51, dtype=float)
        slope = np.polyfit(np.log(ranks), np.log(top + 1), 1)[0]
        assert -1.6 < slope < -0.8  # near -alpha

    def test_alpha_zero_is_uniform(self):
        sampler = ZipfSampler(n=50, alpha=0.0, seed=2)
        ids = sampler.sample(100_000)
        counts = np.bincount(ids, minlength=50)
        assert counts.max() < 1.3 * counts.min()

    def test_deterministic_given_seed(self):
        a = ZipfSampler(n=100, seed=3).sample(100)
        b = ZipfSampler(n=100, seed=3).sample(100)
        np.testing.assert_array_equal(a, b)

    def test_shuffle_moves_hot_id(self):
        sampler = ZipfSampler(n=1000, alpha=1.5, seed=4, shuffle=True)
        hottest = sampler.hottest(1)[0]
        ids = sampler.sample(20_000)
        counts = np.bincount(ids, minlength=1000)
        assert counts[hottest] == counts.max()

    def test_probability_sums_to_one(self):
        sampler = ZipfSampler(n=500, alpha=1.05, seed=5)
        np.testing.assert_allclose(
            sampler.probability(np.arange(500)).sum(), 1.0
        )

    def test_hottest_descending_probability(self):
        sampler = ZipfSampler(n=100, alpha=1.1, seed=6)
        hot = sampler.hottest(5)
        probs = sampler.probability(hot)
        assert np.all(np.diff(probs) <= 0)

    def test_expected_hit_rate_matches_empirical(self):
        sampler = ZipfSampler(n=10_000, alpha=1.05, seed=7)
        cached = sampler.hottest(100)
        analytic = sampler.expected_hit_rate(cached)
        ids = sampler.sample(100_000)
        empirical = float(np.isin(ids, cached).mean())
        assert abs(analytic - empirical) < 0.02

    def test_expected_hit_rate_monotone_in_cache_size(self):
        sampler = ZipfSampler(n=10_000, alpha=1.05, seed=8)
        small = sampler.expected_hit_rate(sampler.hottest(10))
        large = sampler.expected_hit_rate(sampler.hottest(1000))
        assert large > small

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            ZipfSampler(n=0)
        with pytest.raises(ValueError):
            ZipfSampler(n=10, alpha=-1)

    def test_inverse_permutation_cached_and_stable(self):
        """probability() memoizes the O(n) inverse permutation: repeated
        calls reuse one array and keep returning identical values."""
        sampler = ZipfSampler(n=5000, alpha=1.05, seed=9, shuffle=True)
        first = sampler.probability(np.arange(100))
        cached = sampler._inverse
        assert cached is not None
        second = sampler.probability(np.arange(100))
        assert sampler._inverse is cached  # same array object, not rebuilt
        np.testing.assert_array_equal(first, second)
        # Still consistent with the permutation's definition.
        hottest = sampler.hottest(1)[0]
        assert sampler.probability(np.array([hottest]))[0] == sampler._probs[0]
