import numpy as np
import pytest

from repro.core.paths import ExecutionPath, PathProfile
from repro.core.profiler import make_path, profile_path
from repro.core.representations import RepresentationConfig, paper_configs
from repro.hardware.catalog import CPU_BROADWELL, GPU_V100
from repro.hardware.latency import path_latency
from repro.models.configs import KAGGLE


class TestPathProfile:
    def test_interpolates_between_points(self):
        profile = PathProfile(sizes=np.array([1, 100]), latencies=np.array([1e-3, 1e-1]))
        mid = profile.latency(10)
        assert 1e-3 < mid < 1e-1

    def test_exact_at_knots(self):
        profile = PathProfile(sizes=np.array([1, 10, 100]), latencies=np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(profile.latency(10), 2.0)

    def test_clamps_beyond_range(self):
        profile = PathProfile(sizes=np.array([10, 100]), latencies=np.array([1.0, 2.0]))
        assert profile.latency(1000) == 2.0
        assert profile.latency(1) == 1.0

    def test_throughput(self):
        profile = PathProfile(sizes=np.array([1, 100]), latencies=np.array([0.01, 0.01]))
        np.testing.assert_allclose(profile.throughput(100), 10_000)

    def test_rejects_unsorted_sizes(self):
        with pytest.raises(ValueError):
            PathProfile(sizes=np.array([10, 5]), latencies=np.array([1.0, 2.0]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            PathProfile(sizes=np.array([1, 2]), latencies=np.array([1.0]))

    def test_rejects_nonpositive_query(self):
        profile = PathProfile(sizes=np.array([1, 2]), latencies=np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            profile.latency(0)


class TestProfilePath:
    def test_matches_direct_estimates(self):
        rep = paper_configs(KAGGLE)["table"]
        profile = profile_path(rep, KAGGLE, CPU_BROADWELL, sizes=(16, 256))
        direct = path_latency(rep, KAGGLE, CPU_BROADWELL, 256)
        np.testing.assert_allclose(profile.latency(256), direct)

    def test_interpolation_error_small(self):
        """Log-linear interpolation between profiled sizes stays within a few
        percent of the direct model."""
        rep = paper_configs(KAGGLE)["dhe"]
        profile = profile_path(rep, KAGGLE, GPU_V100)
        for size in (3, 23, 100, 731, 3000):
            direct = path_latency(rep, KAGGLE, GPU_V100, size)
            assert abs(profile.latency(size) - direct) / direct < 0.08

    def test_cache_effects_propagate(self):
        rep = paper_configs(KAGGLE)["dhe"]
        plain = profile_path(rep, KAGGLE, CPU_BROADWELL, sizes=(128,))
        cached = profile_path(
            rep, KAGGLE, CPU_BROADWELL, sizes=(128,),
            encoder_hit_rate=0.8, decoder_speedup=3.0,
        )
        assert cached.latency(128) < plain.latency(128)


class TestMakePath:
    def test_fields_populated(self):
        rep = paper_configs(KAGGLE)["hybrid"]
        path = make_path(rep, KAGGLE, GPU_V100, accuracy=78.98)
        assert path.kind == "hybrid"
        assert path.accuracy == 78.98
        assert path.memory_bytes == rep.total_bytes(KAGGLE)
        assert "HYBRID" in path.label

    def test_custom_label(self):
        rep = paper_configs(KAGGLE)["table"]
        path = make_path(rep, KAGGLE, CPU_BROADWELL, 78.79, label="custom")
        assert path.label == "custom"
        assert "custom" in repr(path)
