import numpy as np
import pytest

from repro.data.criteo import (
    CriteoStatistics,
    format_line,
    parse_line,
    read_criteo_file,
    scan_statistics,
    write_criteo_file,
)
from repro.models.configs import ModelConfig

SMALL = ModelConfig(
    name="filefmt",
    n_dense=4,
    cardinalities=[50, 500, 20],
    embedding_dim=8,
    bottom_mlp=[8],
    top_mlp=[8],
)


class TestLineFormat:
    def test_roundtrip(self):
        dense = np.array([3.0, 0.0, 17.0, 2.0])
        sparse = np.array([12, 499, 7])
        line = format_line(1, dense, sparse)
        label, dense2, sparse2 = parse_line(line, 4, 3)
        assert label == 1
        np.testing.assert_allclose(dense2, dense)
        np.testing.assert_array_equal(sparse2, sparse)

    def test_hex_encoding(self):
        line = format_line(0, np.zeros(1), np.array([255]))
        assert line.split("\t")[-1] == "000000ff"

    def test_missing_fields_default_zero(self):
        label, dense, sparse = parse_line("1\t\t\t", 2, 1)
        assert label == 1
        np.testing.assert_array_equal(dense, [0.0, 0.0])
        np.testing.assert_array_equal(sparse, [0])

    def test_wrong_field_count(self):
        with pytest.raises(ValueError, match="tab-separated"):
            parse_line("1\t2", 4, 3)


class TestFileRoundtrip:
    def test_write_then_read(self, tmp_path):
        path = write_criteo_file(tmp_path / "clicks.tsv", SMALL, n_rows=500, seed=3)
        batches = list(read_criteo_file(path, SMALL, batch_size=128))
        total = sum(len(b) for b in batches)
        assert total == 500
        assert batches[0].dense.shape[1] == SMALL.n_dense
        assert batches[0].sparse.shape[1] == SMALL.n_sparse

    def test_ids_bucketed_to_cardinalities(self, tmp_path):
        path = write_criteo_file(tmp_path / "clicks.tsv", SMALL, n_rows=300, seed=4)
        for batch in read_criteo_file(path, SMALL):
            for f, rows in enumerate(SMALL.cardinalities):
                assert batch.sparse[:, f].max() < rows

    def test_labels_binary_and_plausible_ctr(self, tmp_path):
        path = write_criteo_file(tmp_path / "clicks.tsv", SMALL, n_rows=2000, seed=5)
        labels = np.concatenate(
            [b.labels for b in read_criteo_file(path, SMALL)]
        )
        assert set(np.unique(labels)) <= {0.0, 1.0}
        assert 0.05 < labels.mean() < 0.7

    def test_dense_log1p_preprocessing(self, tmp_path):
        path = write_criteo_file(tmp_path / "clicks.tsv", SMALL, n_rows=100, seed=6)
        batch = next(read_criteo_file(path, SMALL))
        assert batch.dense.min() >= 0

    def test_partial_final_batch(self, tmp_path):
        path = write_criteo_file(tmp_path / "clicks.tsv", SMALL, n_rows=130, seed=7)
        sizes = [len(b) for b in read_criteo_file(path, SMALL, batch_size=64)]
        assert sizes == [64, 64, 2]


class TestStatistics:
    def test_scan_counts_rows_and_ctr(self, tmp_path):
        path = write_criteo_file(tmp_path / "clicks.tsv", SMALL, n_rows=1000, seed=8)
        stats = scan_statistics(path, SMALL)
        assert stats.n_rows == 1000
        assert 0 < stats.ctr < 1

    def test_hot_ids_follow_popularity(self, tmp_path):
        path = write_criteo_file(tmp_path / "clicks.tsv", SMALL, n_rows=3000, seed=9)
        stats = scan_statistics(path, SMALL)
        # Zipf traffic: the top-5 IDs of the 500-row feature carry a
        # disproportionate share of accesses.
        fraction = stats.hot_traffic_fraction(feature=1, count=5)
        assert fraction > 5 * (5 / 500)

    def test_hottest_ids_sorted_by_count(self, tmp_path):
        path = write_criteo_file(tmp_path / "clicks.tsv", SMALL, n_rows=1000, seed=10)
        stats = scan_statistics(path, SMALL)
        hottest = stats.hottest_ids(feature=0, count=3)
        counts = [stats.access_counts[0][i] for i in hottest]
        assert counts == sorted(counts, reverse=True)

    def test_empty_stats_safe(self):
        stats = CriteoStatistics(access_counts=[{}])
        assert stats.ctr == 0.0
        assert stats.hot_traffic_fraction(0, 5) == 0.0
