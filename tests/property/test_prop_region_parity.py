"""The parity oracle, one level up: regions against the cluster tier.

The PR-3 pattern (kernel == 1-node cluster) lifted to the geo tier: a
1-region :class:`~repro.serving.region.RegionSimulator` adds zero WAN
traffic and trivial geo-routing, so it must reproduce the wrapped
:class:`~repro.serving.cluster.ClusterSimulator` *record for record* —
across intra-region routers, shed policies, batch sizes, tenancy, and
both geo-router flavors.  And the exactly-once invariant extends across
regions: under arbitrary spilling and a mid-run region failure, every
query is observed exactly once globally (served or dropped, never
duplicated, never silently lost), with the WAN byte meters tied to the
spill/re-home counts by exact identities.
"""

from hypothesis import given, strategies as st

from tests.property.budget import prop_settings

from repro.analysis.sharding import greedy_shard
from repro.serving.cluster import ClusterSimulator
from repro.serving.region import RegionSimulator

from tests.property.test_prop_engine_parity import (
    batches,
    build_scenario,
    build_scheduler,
    gaps,
    policies,
    query_sizes,
    schedulers,
    slas,
    sorted_records,
)

routers = st.sampled_from(["round-robin", "least-loaded", "locality"])
geo_routers = st.sampled_from(["pinned", "spill"])


def two_node_cluster(scheduler, node_base=0, **kwargs):
    plan = greedy_shard([1000, 2000, 500], 16, 2)
    return ClusterSimulator(scheduler, plan, node_base=node_base, **kwargs)


@prop_settings(30)
@given(gaps=gaps, sizes=query_sizes, sla=slas, policy=policies,
       batch=batches, sched_kind=schedulers, router=routers,
       geo_router=geo_routers, tenants=st.booleans())
def test_one_region_matches_cluster_record_for_record(
    gaps, sizes, sla, policy, batch, sched_kind, router, geo_router, tenants
):
    """A 1-region fleet is the cluster: same records, same accounting —
    whichever geo router is installed (one region leaves it no choice)."""
    scenario = build_scenario(gaps, sizes, sla, tenants=tenants)
    kwargs = dict(
        router=router, shed_policy=policy, max_batch_size=batch,
        batch_timeout_s=0.001,
    )
    cluster = two_node_cluster(build_scheduler(sched_kind), **kwargs)
    member = two_node_cluster(build_scheduler(sched_kind), **kwargs)
    geo = RegionSimulator([("solo", member)], geo_router=geo_router)
    expected = sorted_records(cluster.run(scenario).result)
    result = geo.run(scenario, [0] * len(scenario.queries))
    got = sorted_records(result.result)
    assert got == expected
    assert result.wan_bytes == 0
    assert result.spills == 0 and result.rehomed == 0
    assert result.per_region_served[0] == sum(
        1 for r in got if not r.dropped
    )


@prop_settings(30)
@given(gaps=gaps, sizes=query_sizes, sla=slas, policy=policies,
       batch=batches, sched_kind=schedulers, geo_router=geo_routers,
       spill_margin=st.floats(min_value=0.0, max_value=1.0),
       replication=st.sampled_from([1, 2]),
       fail_frac=st.floats(min_value=0.1, max_value=0.9))
def test_every_query_accounted_exactly_once_across_regions(
    gaps, sizes, sla, policy, batch, sched_kind, geo_router,
    spill_margin, replication, fail_frac
):
    """Spill + failover never lose or duplicate a query, the WAN meters
    obey their exact identities, and replication >= 2 loses nothing."""
    scenario = build_scenario(gaps, sizes, sla)
    n = len(scenario.queries)
    region_of = [i % 3 for i in range(n)]
    horizon = scenario.queries.queries[-1].arrival_s or 1e-3
    regions = []
    for i in range(3):
        plan = greedy_shard([1000, 2000, 500], 16, 1)
        regions.append((
            f"r{i}",
            ClusterSimulator(
                build_scheduler(sched_kind), plan, node_base=i,
                shed_policy=policy, max_batch_size=batch,
                batch_timeout_s=0.001,
            ),
        ))
    sim = RegionSimulator(
        regions, geo_router=geo_router, spill_margin=spill_margin,
        region_replication=replication,
        fail_region=1, fail_at=horizon * fail_frac,
    )
    result = sim.run(scenario, region_of)
    assert sorted(r.index for r in result.result.records) == list(range(n))
    assert result.spill_bytes == result.spills * sim.bytes_per_query
    assert result.rehome_bytes == result.rehomed * sim.bytes_per_query
    if replication >= 2:
        assert result.lost == 0
        assert result.edge_drops == 0
    served = sum(1 for r in result.result.records if not r.dropped)
    assert served == sum(result.per_region_served)
