"""Property-based invariants of Algorithm 2 and the serving simulator."""

import numpy as np
from hypothesis import given, strategies as st

from tests.property.budget import prop_settings

from repro.core.online import MultiPathScheduler, StaticScheduler
from repro.data.queries import Query, QuerySet
from repro.hardware.catalog import CPU_BROADWELL, GPU_V100
from repro.serving.simulator import ServingSimulator
from repro.serving.workload import ServingScenario

from tests.unit.test_online import fake_path, idle

latencies = st.floats(min_value=1e-4, max_value=0.05)
slas = st.floats(min_value=1e-3, max_value=0.5)
sizes = st.integers(min_value=1, max_value=4096)


def build_paths(table_lat, dhe_lat, hybrid_lat):
    return [
        fake_path("table", CPU_BROADWELL, 78.79, table_lat, label="T"),
        fake_path("dhe", GPU_V100, 78.94, dhe_lat, label="D"),
        fake_path("hybrid", GPU_V100, 78.98, hybrid_lat, label="H"),
    ]


@prop_settings(80)
@given(t=latencies, d=latencies, h=latencies, sla=slas, size=sizes)
def test_scheduler_always_returns_a_path(t, d, h, sla, size):
    paths = build_paths(t, d, h)
    sched = MultiPathScheduler(paths)
    decision = sched.select(size, sla, 0.0, idle(paths))
    assert decision.path in paths


@prop_settings(80)
@given(t=latencies, d=latencies, h=latencies, sla=slas, size=sizes)
def test_feasible_selection_is_most_preferred_feasible(t, d, h, sla, size):
    """If the chosen path meets the SLA, no more-preferred kind also did."""
    paths = build_paths(t, d, h)
    sched = MultiPathScheduler(paths)
    decision = sched.select(size, sla, 0.0, idle(paths))
    order = ["hybrid", "dhe", "select", "table"]
    if decision.finish_after_arrival_s <= sla:
        chosen_rank = order.index(decision.path.kind)
        for path in paths:
            if order.index(path.kind) < chosen_rank:
                assert path.latency(size) > sla


@prop_settings(50)
@given(
    n_queries=st.integers(min_value=1, max_value=40),
    gap_ms=st.floats(min_value=0.0, max_value=20.0),
    t=latencies,
    seed=st.integers(0, 1000),
)
def test_simulator_conservation_and_ordering(n_queries, gap_ms, t, seed):
    """Every query is served exactly once; service intervals on one device
    never overlap; latency >= service time."""
    rng = np.random.default_rng(seed)
    path = fake_path("table", CPU_BROADWELL, 78.79, t, label="T")
    queries = [
        Query(index=i, size=int(rng.integers(1, 512)), arrival_s=i * gap_ms / 1e3)
        for i in range(n_queries)
    ]
    scenario = ServingScenario(queries=QuerySet(queries=queries), sla_s=0.01)
    result = ServingSimulator(StaticScheduler([path]), track_energy=False).run(scenario)

    assert len(result.records) == n_queries
    assert sorted(r.index for r in result.records) == list(range(n_queries))
    intervals = sorted((r.start_s, r.finish_s) for r in result.records)
    for (s1, f1), (s2, f2) in zip(intervals, intervals[1:]):
        assert s2 >= f1 - 1e-12  # single server: no overlap
    for record in result.records:
        assert record.finish_s >= record.start_s >= record.arrival_s
