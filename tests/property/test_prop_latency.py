"""Property-based invariants of the hardware latency/energy model."""

import numpy as np
from hypothesis import given, strategies as st

from tests.property.budget import prop_settings

from repro.core.representations import RepresentationConfig
from repro.hardware.catalog import DEVICE_CATALOG
from repro.hardware.energy import average_power, energy_per_query
from repro.hardware.latency import estimate_breakdown
from repro.models.configs import KAGGLE

devices = st.sampled_from(sorted(DEVICE_CATALOG))
batches = st.integers(min_value=1, max_value=4096)
ks = st.sampled_from([8, 64, 512, 2048])
dnns = st.sampled_from([32, 128, 480])
hs = st.integers(min_value=0, max_value=4)


def rep_strategy():
    return st.one_of(
        st.just(RepresentationConfig("table", 16)),
        st.builds(
            lambda k, dnn, h: RepresentationConfig("dhe", 16, k=k, dnn=dnn, h=h),
            ks, dnns, hs,
        ),
        st.builds(
            lambda k, dnn, h: RepresentationConfig(
                "hybrid", 24, k=k, dnn=dnn, h=h, table_dim=16, dhe_dim=8
            ),
            ks, dnns, hs,
        ),
    )


@prop_settings(60)
@given(rep=rep_strategy(), device=devices, batch=batches)
def test_breakdown_fields_nonnegative_and_finite(rep, device, batch):
    bd = estimate_breakdown(rep, KAGGLE, DEVICE_CATALOG[device], batch)
    for name, value in bd.as_dict().items():
        assert np.isfinite(value), name
        assert value >= 0.0, name
    assert bd.total > 0.0


@prop_settings(40)
@given(rep=rep_strategy(), device=devices, batch=st.integers(1, 2047))
def test_latency_monotone_in_batch(rep, device, batch):
    spec = DEVICE_CATALOG[device]
    small = estimate_breakdown(rep, KAGGLE, spec, batch).total
    large = estimate_breakdown(rep, KAGGLE, spec, batch * 2).total
    assert large >= small * 0.999


@prop_settings(40)
@given(
    rep=rep_strategy(), device=devices, batch=batches,
    hit=st.floats(min_value=0.0, max_value=1.0),
    speedup=st.floats(min_value=1.0, max_value=100.0),
)
def test_cache_shrinks_the_compute_stack(rep, device, batch, hit, speedup):
    """MP-Cache strictly reduces encoder+decoder time; the total may exceed
    the base only by the hit-serving gathers (a cache lookup can cost more
    than computing a trivially small stack — the paper's caches front
    k~2048 stacks where this never happens)."""
    spec = DEVICE_CATALOG[device]
    base = estimate_breakdown(rep, KAGGLE, spec, batch)
    cached = estimate_breakdown(
        rep, KAGGLE, spec, batch, encoder_hit_rate=hit, decoder_speedup=speedup
    )
    assert cached.encoder <= base.encoder * 1.001
    assert cached.decoder <= base.decoder * 1.001
    hit_gather_budget = (cached.embedding - base.embedding) + 1e-12
    assert cached.total <= base.total + max(hit_gather_budget, 0.0) + 1e-12


@prop_settings(40)
@given(rep=rep_strategy(), device=devices, batch=batches)
def test_power_bounded_by_tdp(rep, device, batch):
    spec = DEVICE_CATALOG[device]
    bd = estimate_breakdown(rep, KAGGLE, spec, batch)
    power = average_power(spec, bd)
    assert spec.idle_w <= power <= spec.tdp_w + 1e-9
    assert energy_per_query(spec, bd) > 0
