"""The parity oracle: random scenarios through kernel, reference, cluster.

The serving kernel (:mod:`repro.serving.engine`) backs both the
single-node :class:`~repro.serving.simulator.ServingSimulator` and the
:class:`~repro.serving.cluster.ClusterSimulator`; the seed per-query loop
is retained as :class:`~repro.serving.simulator.ReferenceSimulator`.
These properties pin the agreements across random small scenarios —
every shed policy, batching on and off, single- and multi-tenant:

- **kernel == 1-node cluster**, record for record, always (a 1-node
  cluster adds zero exchange and trivial routing, nothing else);
- **kernel == reference loop**, record for record, whenever the
  reference's semantics apply (batching disabled, ``none`` /
  ``drop-late`` shedding, single-tenant SLA);
- **elastic == static**, record for record, when the autoscale
  controller never fires (the elastic plumbing is a strict no-op), and
  the **zero-loss drain invariant**: a fleet forced through a
  2 -> 4 -> 2 membership cycle accounts every query exactly once;
- **fast path == kernel**, record for record, across every supported
  scheduler, shed policy, batch size, and tenancy (the array engine of
  :mod:`repro.serving.fastpath` replays the kernel's decision rules
  against precomputed batch plans — docs/serving.md), and the chunked
  :meth:`~repro.serving.metrics.StreamingMetrics.observe_many` folds the
  same outcomes as per-record ``observe``.
"""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from tests.property.budget import prop_settings

from repro.analysis.sharding import greedy_shard
from repro.core.online import (
    GreedyLatencyScheduler,
    MultiPathScheduler,
    StaticScheduler,
    TableSwitchScheduler,
)
from repro.data.queries import Query, QuerySet
from repro.hardware.catalog import CPU_BROADWELL, GPU_V100
from repro.serving.autoscale import AutoscaleController
from repro.serving.cluster import ClusterSimulator
from repro.serving.metrics import P2Quantile, ReservoirSampler
from repro.serving.simulator import ReferenceSimulator, ServingSimulator
from repro.serving.workload import ServingScenario, TenantSpec

from tests.unit.test_online import fake_path

POLICIES = ("none", "drop-late", "deadline-aware")
BATCH_SIZES = (1, 8)

gaps = st.lists(
    st.floats(min_value=0.0, max_value=0.02), min_size=2, max_size=40
)
query_sizes = st.lists(
    st.integers(min_value=1, max_value=512), min_size=2, max_size=40
)
policies = st.sampled_from(POLICIES)
batches = st.sampled_from(BATCH_SIZES)
slas = st.floats(min_value=5e-4, max_value=0.05)
schedulers = st.sampled_from(["static", "multi"])
# The fast path compiles a dedicated router per built-in scheduler type;
# exercise every branch (plus the select_batch fallback via subclasses
# in tests/unit/test_fastpath.py).
fast_schedulers = st.sampled_from(["static", "multi", "tswitch", "greedy"])


def build_scheduler(kind):
    if kind == "static":
        return StaticScheduler(
            [fake_path("table", CPU_BROADWELL, 78.79, 2e-3, label="T")]
        )
    paths = [
        fake_path("table", CPU_BROADWELL, 78.79, 2e-3, label="T"),
        fake_path("hybrid", GPU_V100, 78.98, 4e-3, label="H"),
    ]
    if kind == "tswitch":
        return TableSwitchScheduler(paths)
    if kind == "greedy":
        return GreedyLatencyScheduler(paths)
    return MultiPathScheduler(paths)


def build_scenario(gaps, sizes, sla_s, tenants=False):
    n = min(len(gaps), len(sizes))
    arrival = 0.0
    queries = []
    for i in range(n):
        arrival += gaps[i]
        queries.append(Query(
            index=i, size=sizes[i], arrival_s=arrival,
            tenant=("even" if i % 2 == 0 else "odd") if tenants else "",
        ))
    scenario = ServingScenario(queries=QuerySet(queries=queries), sla_s=sla_s)
    if tenants:
        # Strict even tenant, lenient odd tenant.
        scenario.sla_by_tenant = {"even": sla_s, "odd": 10 * sla_s}
    return scenario


def one_node_cluster(scheduler, **kwargs):
    plan = greedy_shard([1000, 2000, 500], 16, 1)
    return ClusterSimulator(scheduler, plan, **kwargs)


def sorted_records(result):
    return sorted(result.records, key=lambda r: r.index)


@prop_settings(40)
@given(gaps=gaps, sizes=query_sizes, sla=slas, policy=policies,
       batch=batches, sched_kind=schedulers, tenants=st.booleans())
def test_kernel_matches_one_node_cluster(
    gaps, sizes, sla, policy, batch, sched_kind, tenants
):
    """Every policy x batch size x tenancy: the 1-node cluster reproduces
    the single-node kernel record for record."""
    scheduler = build_scheduler(sched_kind)
    scenario = build_scenario(gaps, sizes, sla, tenants=tenants)
    engine = ServingSimulator(
        scheduler, shed_policy=policy, max_batch_size=batch,
        batch_timeout_s=0.001,
    )
    cluster = one_node_cluster(
        scheduler, shed_policy=policy, max_batch_size=batch,
        batch_timeout_s=0.001,
    )
    expected = sorted_records(engine.run(scenario))
    got = sorted_records(cluster.run(scenario).result)
    assert got == expected


@prop_settings(40)
@given(gaps=gaps, sizes=query_sizes, sla=slas,
       policy=st.sampled_from(["none", "drop-late"]),
       sched_kind=schedulers)
def test_kernel_matches_reference_loop(gaps, sizes, sla, policy, sched_kind):
    """Batching disabled + seed policies: the kernel reproduces the seed
    per-query loop bit for bit, energy included."""
    scheduler = build_scheduler(sched_kind)
    scenario = build_scenario(gaps, sizes, sla)
    reference = ReferenceSimulator(scheduler, shed_policy=policy)
    engine = ServingSimulator(scheduler, shed_policy=policy)
    assert engine.run(scenario).records == reference.run(scenario).records


@prop_settings(25)
@given(gaps=gaps, sizes=query_sizes, sla=slas, policy=policies,
       batch=batches)
def test_streaming_counters_match_exact(gaps, sizes, sla, policy, batch):
    """The two sinks fold the same outcomes: counter metrics agree."""
    scheduler = build_scheduler("multi")
    scenario = build_scenario(gaps, sizes, sla, tenants=True)
    sim = ServingSimulator(
        scheduler, shed_policy=policy, max_batch_size=batch,
        batch_timeout_s=0.001,
    )
    exact = sim.run(scenario)
    stream = sim.run_streaming(scenario)
    assert stream.raw_throughput == exact.raw_throughput
    assert stream.violation_rate == exact.violation_rate
    assert stream.drop_rate == exact.drop_rate
    assert stream.switching_breakdown() == exact.switching_breakdown()


@prop_settings(25)
@given(gaps=gaps, sizes=query_sizes, sla=slas, policy=policies,
       batch=batches, tenants=st.booleans())
def test_every_query_accounted_exactly_once(
    gaps, sizes, sla, policy, batch, tenants
):
    """No query is lost or duplicated by batching, shedding, or tenancy."""
    scheduler = build_scheduler("multi")
    scenario = build_scenario(gaps, sizes, sla, tenants=tenants)
    sim = ServingSimulator(
        scheduler, shed_policy=policy, max_batch_size=batch,
        batch_timeout_s=0.001,
    )
    result = sim.run(scenario)
    assert sorted(r.index for r in result.records) == (
        [q.index for q in scenario.queries]
    )


@prop_settings(30)
@given(gaps=gaps, sizes=query_sizes, sla=slas, policy=policies,
       batch=batches, sched_kind=schedulers,
       router=st.sampled_from(["round-robin", "least-loaded", "locality"]),
       replication=st.sampled_from([1, 2]))
def test_scale_2_4_2_accounts_every_query_exactly_once(
    gaps, sizes, sla, policy, batch, sched_kind, router, replication
):
    """The zero-loss drain invariant: a fleet forced through a
    2 -> 4 -> 2 membership cycle (two joins, two drains, live shard
    handoff both ways) neither loses nor duplicates a single query."""
    scheduler = build_scheduler(sched_kind)
    scenario = build_scenario(gaps, sizes, sla)
    horizon = scenario.queries.queries[-1].arrival_s or 1e-3
    controller = AutoscaleController(
        min_nodes=2, max_nodes=4,
        # Pressure never fires; the forced schedule drives membership.
        hi_pressure=1e9, lo_pressure=0.0, patience=10**9,
        patience_down=10**9, cooldown_s=0.0,
        schedule=(
            (horizon * 0.2, "up"), (horizon * 0.4, "up"),
            (horizon * 0.6, "down"), (horizon * 0.8, "down"),
        ),
    )
    plan = greedy_shard([1000, 2000, 500, 1500], 16, 4)
    cluster = ClusterSimulator(
        scheduler, plan, router=router, replication=replication,
        shed_policy=policy, max_batch_size=batch, batch_timeout_s=0.001,
        autoscale=controller,
    )
    result = cluster.run(scenario)
    assert result.scale_ups == 2 and result.scale_downs == 2
    assert result.lost == 0
    assert sorted(r.index for r in result.result.records) == (
        [q.index for q in scenario.queries]
    )


@prop_settings(30)
@given(gaps=gaps, sizes=query_sizes, sla=slas, policy=policies,
       batch=batches, sched_kind=schedulers, tenants=st.booleans())
def test_elastic_cluster_is_noop_when_controller_never_fires(
    gaps, sizes, sla, policy, batch, sched_kind, tenants
):
    """With min == max == initial membership the autoscale plumbing (epoch
    state, dispatch observer, membership-aware routing) must be a strict
    no-op: the elastic fleet reproduces the static 4-node run record for
    record."""
    scheduler = build_scheduler(sched_kind)
    scenario = build_scenario(gaps, sizes, sla, tenants=tenants)
    plan = greedy_shard([1000, 2000, 500, 1500], 16, 4)
    static = ClusterSimulator(
        scheduler, plan, shed_policy=policy, max_batch_size=batch,
        batch_timeout_s=0.001,
    )
    elastic = ClusterSimulator(
        scheduler, plan, shed_policy=policy, max_batch_size=batch,
        batch_timeout_s=0.001,
        autoscale=AutoscaleController(min_nodes=4, max_nodes=4),
    )
    expected = sorted_records(static.run(scenario).result)
    got = sorted_records(elastic.run(scenario).result)
    assert got == expected


@prop_settings(40)
@given(gaps=gaps, sizes=query_sizes, sla=slas, policy=policies,
       batch=batches, sched_kind=fast_schedulers, tenants=st.booleans())
def test_fastpath_matches_kernel_record_for_record(
    gaps, sizes, sla, policy, batch, sched_kind, tenants
):
    """Every scheduler x policy x batch size x tenancy: the array fast
    path reproduces the event kernel bit for bit — same floats, same
    commit order, energy and per-tenant SLA stamps included."""
    scenario = build_scenario(gaps, sizes, sla, tenants=tenants)
    event = ServingSimulator(
        build_scheduler(sched_kind), shed_policy=policy,
        max_batch_size=batch, batch_timeout_s=0.001,
    )
    fast = ServingSimulator(
        build_scheduler(sched_kind), shed_policy=policy,
        max_batch_size=batch, batch_timeout_s=0.001, engine="fast",
    )
    assert fast.run(scenario).records == event.run(scenario).records


@prop_settings(25)
@given(gaps=gaps, sizes=query_sizes, sla=slas, policy=policies,
       batch=batches, tenants=st.booleans())
def test_fastpath_streaming_counters_match_kernel(
    gaps, sizes, sla, policy, batch, tenants
):
    """The fast path's bulk ``observe_many`` fold reports the same
    counter metrics as the kernel's per-outcome streaming sink."""
    scenario = build_scenario(gaps, sizes, sla, tenants=tenants)
    event = ServingSimulator(
        build_scheduler("multi"), shed_policy=policy,
        max_batch_size=batch, batch_timeout_s=0.001,
    )
    fast = ServingSimulator(
        build_scheduler("multi"), shed_policy=policy,
        max_batch_size=batch, batch_timeout_s=0.001, engine="fast",
    )
    expected = event.run_streaming(scenario)
    got = fast.run_streaming(scenario)
    assert got.raw_throughput == expected.raw_throughput
    assert got.violation_rate == expected.violation_rate
    assert got.drop_rate == expected.drop_rate
    assert got.mean_accuracy == expected.mean_accuracy
    assert got.total_energy_j == pytest.approx(
        expected.total_energy_j, rel=1e-12, abs=0.0
    )
    assert got.switching_breakdown() == expected.switching_breakdown()


@prop_settings(20)
@given(
    base=st.lists(
        st.floats(min_value=1e-6, max_value=1.0), min_size=8, max_size=48
    ),
    q=st.sampled_from([0.5, 0.95, 0.99]),
)
def test_observe_many_equals_per_observe(base, q):
    """Chunked quantile folding agrees with the per-sample estimator.

    The reservoir consumes the identical RNG stream, so its samples are
    bit-equal; the P² markers follow a count-weighted blend, so the
    estimate is pinned to a tolerance (and the min/max markers exactly).
    """
    # Tile the drawn values into a >= 256-element stream so observe_many
    # takes the chunked sorted-block path, not the small-chunk replay.
    xs = np.tile(np.asarray(base, dtype=np.float64), 40)
    xs *= np.linspace(1.0, 1.5, xs.size)

    one = P2Quantile(q)
    for x in xs.tolist():
        one.observe(x)
    many = P2Quantile(q)
    many.observe_many(xs)
    truth = float(np.quantile(xs, q))
    spread = float(xs.max() - xs.min()) or 1.0
    assert abs(many.value - truth) <= abs(one.value - truth) + 0.05 * spread

    r_one = ReservoirSampler(capacity=64, seed=3)
    for x in xs.tolist():
        r_one.observe(x)
    r_many = ReservoirSampler(capacity=64, seed=3)
    r_many.observe_many(xs)
    assert r_many._sample == r_one._sample
