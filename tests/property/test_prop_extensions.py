"""Property-based checks on TT-Rec, the Criteo file format, and sharding."""

import numpy as np
from hypothesis import given, strategies as st

from tests.property.budget import prop_settings

from repro.analysis.sharding import greedy_shard
from repro.data.criteo import format_line, parse_line
from repro.embeddings.ttrec import TTEmbedding, factorize_evenly, mixed_radix_digits

seeds = st.integers(min_value=0, max_value=2**31 - 1)


@prop_settings(60)
@given(n=st.integers(min_value=1, max_value=10**8), parts=st.integers(2, 4))
def test_factorization_always_covers(n, parts):
    factors = factorize_evenly(n, parts)
    assert len(factors) == parts
    assert int(np.prod(factors)) >= n
    assert all(f >= 1 for f in factors)


@prop_settings(40)
@given(
    radices=st.lists(st.integers(2, 50), min_size=2, max_size=4),
    seed=seeds,
)
def test_mixed_radix_reconstructs(radices, seed):
    rng = np.random.default_rng(seed)
    limit = int(np.prod(radices))
    ids = rng.integers(0, limit, size=20)
    digits = mixed_radix_digits(ids, radices)
    reconstructed = np.zeros_like(ids)
    multiplier = 1
    for digit, radix in zip(digits, radices):
        reconstructed += digit * multiplier
        multiplier *= radix
    np.testing.assert_array_equal(reconstructed, ids)


@prop_settings(20)
@given(
    rows=st.integers(min_value=2, max_value=500),
    rank=st.integers(min_value=1, max_value=6),
    seed=seeds,
)
def test_ttrec_rows_deterministic_and_finite(rows, rank, seed):
    rng = np.random.default_rng(seed)
    emb = TTEmbedding(rows, 8, rank, rng)
    ids = rng.integers(0, rows, size=10)
    out1 = emb(ids)
    out2 = emb(ids)
    np.testing.assert_array_equal(out1, out2)
    assert np.isfinite(out1).all()


@prop_settings(50)
@given(
    label=st.integers(0, 1),
    dense=st.lists(st.floats(0, 1e6), min_size=1, max_size=13),
    sparse=st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=26),
)
def test_criteo_line_roundtrip(label, dense, sparse):
    dense_arr = np.array(dense)
    sparse_arr = np.array(sparse)
    line = format_line(label, dense_arr, sparse_arr)
    label2, dense2, sparse2 = parse_line(line, len(dense), len(sparse))
    assert label2 == label
    np.testing.assert_allclose(dense2, np.round(dense_arr))
    np.testing.assert_array_equal(sparse2, sparse_arr)


@prop_settings(30)
@given(
    cards=st.lists(st.integers(1, 10**6), min_size=1, max_size=30),
    n_nodes=st.integers(1, 16),
    dim=st.sampled_from([4, 16, 64]),
)
def test_sharding_conserves_rows_and_bounds_imbalance(cards, n_nodes, dim):
    plan = greedy_shard(cards, dim, n_nodes)
    total = sum(rows for slices in plan.assignment for _, rows in slices)
    assert total == sum(cards)
    for slices in plan.assignment:
        for node, rows in slices:
            assert 0 <= node < n_nodes
            assert rows > 0
    # LPT bound: max load <= mean + largest item.
    loads = plan.node_bytes()
    largest = max(cards) * dim * 4
    assert loads.max() <= loads.mean() + largest + 1e-9
