"""Property-based invariants of MP-Cache and the Zipf traffic model."""

import numpy as np
from hypothesis import given, strategies as st

from tests.property.budget import prop_settings

from repro.clustering.kmeans import KMeans
from repro.core.mp_cache import EncoderCache
from repro.data.zipf import ZipfSampler

alphas = st.floats(min_value=0.0, max_value=2.0)
ns = st.integers(min_value=2, max_value=5000)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


@prop_settings(40)
@given(n=ns, alpha=alphas, seed=seeds)
def test_zipf_probabilities_normalized(n, alpha, seed):
    sampler = ZipfSampler(n, alpha=alpha, seed=seed)
    probs = sampler.probability(np.arange(n))
    np.testing.assert_allclose(probs.sum(), 1.0, atol=1e-9)
    assert probs.min() >= 0


@prop_settings(40)
@given(n=ns, alpha=alphas, seed=seeds, count=st.integers(1, 100))
def test_zipf_hit_rate_in_unit_interval(n, alpha, seed, count):
    sampler = ZipfSampler(n, alpha=alpha, seed=seed)
    rate = sampler.expected_hit_rate(sampler.hottest(min(count, n)))
    assert 0.0 <= rate <= 1.0 + 1e-9


@prop_settings(40)
@given(n=ns, alpha=alphas, seed=seeds)
def test_zipf_full_cache_hits_everything(n, alpha, seed):
    sampler = ZipfSampler(n, alpha=alpha, seed=seed)
    np.testing.assert_allclose(
        sampler.expected_hit_rate(np.arange(n)), 1.0, atol=1e-9
    )


@prop_settings(30)
@given(
    capacity=st.integers(min_value=0, max_value=10**6),
    dim=st.integers(min_value=1, max_value=256),
)
def test_encoder_cache_capacity_accounting(capacity, dim):
    cache = EncoderCache(capacity, dim)
    assert cache.capacity_entries * cache.entry_bytes <= capacity


@prop_settings(25)
@given(
    seed=seeds,
    n_points=st.integers(min_value=8, max_value=120),
    n_clusters=st.integers(min_value=1, max_value=8),
    dim=st.integers(min_value=1, max_value=6),
)
def test_kmeans_inertia_not_worse_than_single_centroid(seed, n_points, n_clusters, dim):
    rng = np.random.default_rng(seed)
    points = rng.standard_normal((n_points, dim))
    km = KMeans(n_clusters, seed=seed).fit(points)
    baseline = float(((points - points.mean(axis=0)) ** 2).sum())
    assert km.inertia <= baseline + 1e-9
    assert km.predict(points).max() < n_clusters
