"""Meta-test: every property file draws from the shared example budget.

The nightly CI job scales Hypothesis example counts through the
``PROP_EXAMPLES_MULT`` environment variable, which only works if every
``@given`` in ``tests/property/`` is wrapped by
:func:`tests.property.budget.prop_settings`.  A property file that
imports :mod:`hypothesis.settings` directly (or forgets the wrapper on
one test) silently opts out of the nightly deep pass — this test turns
that drift into a loud failure.
"""

from pathlib import Path

PROP_DIR = Path(__file__).parent
PROP_FILES = sorted(
    p for p in PROP_DIR.glob("test_prop_*.py") if p.name != "test_prop_meta.py"
)

# Built by concatenation so this file never matches its own literals.
GIVEN_MARK = "@" + "given"
SETTINGS_MARK = "@" + "prop_settings"
IMPORT_MARK = "from tests.property.budget " + "import prop_settings"


def test_property_files_exist():
    """The glob is live — an empty match would vacuously pass below."""
    assert len(PROP_FILES) >= 7


def test_every_property_file_imports_the_shared_budget():
    missing = [p.name for p in PROP_FILES if IMPORT_MARK not in p.read_text()]
    assert not missing, (
        f"property files bypassing the shared example budget: {missing}"
    )


def test_every_given_is_wrapped_in_prop_settings():
    uneven = {}
    for path in PROP_FILES:
        text = path.read_text()
        n_given = text.count(GIVEN_MARK)
        n_settings = text.count(SETTINGS_MARK)
        if n_given != n_settings:
            uneven[path.name] = (n_given, n_settings)
    assert not uneven, (
        "files where @given and @prop_settings counts diverge "
        f"(given, settings): {uneven}"
    )


def test_no_property_file_hardcodes_hypothesis_settings():
    raw = "from hypothesis import " + "settings"
    offenders = [p.name for p in PROP_FILES if raw in p.read_text()]
    assert not offenders, (
        f"property files importing hypothesis settings directly: {offenders}"
    )
