"""Property-based gradient and shape checks on the NN substrate."""

import numpy as np
from hypothesis import assume, given, strategies as st

from tests.property.budget import prop_settings

from repro.nn import EmbeddingTable, Linear, MLP
from repro.nn.gradcheck import check_module_gradients
from repro.nn.losses import bce_with_logits

dims = st.integers(min_value=1, max_value=6)
batches = st.integers(min_value=1, max_value=5)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


@prop_settings(25)
@given(in_f=dims, out_f=dims, batch=batches, seed=seeds)
def test_linear_gradients_always_match(in_f, out_f, batch, seed):
    rng = np.random.default_rng(seed)
    layer = Linear(in_f, out_f, rng)
    check_module_gradients(layer, rng.standard_normal((batch, in_f)), rng)


@prop_settings(15)
@given(sizes=st.lists(dims, min_size=2, max_size=4), batch=batches, seed=seeds)
def test_mlp_gradients_always_match(sizes, batch, seed):
    rng = np.random.default_rng(seed)
    mlp = MLP(sizes, rng)
    x = rng.standard_normal((batch, sizes[0]))
    # Central differences are invalid at ReLU kinks: skip examples where any
    # hidden pre-activation sits within the perturbation radius of zero.
    assume(_min_abs_preactivation(mlp, x) > 1e-3)
    check_module_gradients(mlp, x, rng, atol=1e-5, rtol=1e-3)


def _min_abs_preactivation(mlp: MLP, x: np.ndarray) -> float:
    smallest = np.inf
    for layer in mlp.layers:
        x = layer(x)
        if isinstance(layer, Linear):
            smallest = min(smallest, float(np.min(np.abs(x))))
    return smallest


@prop_settings(25)
@given(
    rows=st.integers(min_value=1, max_value=50),
    dim=dims,
    batch=batches,
    seed=seeds,
)
def test_embedding_backward_conserves_gradient_mass(rows, dim, batch, seed):
    """Sum of weight grads equals sum of output grads (scatter-add exactness)."""
    rng = np.random.default_rng(seed)
    table = EmbeddingTable(rows, dim, rng)
    ids = rng.integers(0, rows, size=batch)
    table(ids)
    grad = rng.standard_normal((batch, dim))
    table.backward(grad)
    np.testing.assert_allclose(table.weight.grad.sum(), grad.sum(), atol=1e-9)


@prop_settings(50)
@given(
    logits=st.lists(
        st.floats(min_value=-50, max_value=50), min_size=1, max_size=20
    ),
    seed=seeds,
)
def test_bce_loss_nonnegative_and_finite(logits, seed):
    rng = np.random.default_rng(seed)
    logits = np.array(logits)
    labels = (rng.random(logits.size) > 0.5).astype(float)
    loss, grad = bce_with_logits(logits, labels)
    assert loss >= 0.0
    assert np.isfinite(loss)
    assert np.isfinite(grad).all()
    # Gradient is bounded by 1/n per element (sigmoid in [0,1]).
    assert np.all(np.abs(grad) <= 1.0 / logits.size + 1e-12)
