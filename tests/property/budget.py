"""Hypothesis example budgets, scalable for the nightly CI run.

Every property test sizes its example count for the fast pull-request
gate.  The scheduled nightly job exports ``PROP_EXAMPLES_MULT`` (e.g.
``5``) to multiply every budget without touching the tests — deadlines
stay disabled either way, since the simulations inside single examples
legitimately take tens of milliseconds.
"""

from __future__ import annotations

import os

from hypothesis import settings

_MULT = max(1, int(os.environ.get("PROP_EXAMPLES_MULT", "1")))


def prop_settings(max_examples: int, **kwargs) -> settings:
    """``@settings`` for one property: the PR-gate budget times the
    nightly multiplier, with deadlines off."""
    kwargs.setdefault("deadline", None)
    return settings(max_examples=max_examples * _MULT, **kwargs)
