"""Property-based checks on the DHE hash family and encoders."""

import numpy as np
from hypothesis import given, strategies as st

from tests.property.budget import prop_settings

from repro.embeddings.hashing import HashFamily, encode_ids

ks = st.integers(min_value=1, max_value=64)
ms = st.integers(min_value=2, max_value=1_000_000)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


@prop_settings(50)
@given(k=ks, m=ms, seed=seeds)
def test_hash_outputs_in_range(k, m, seed):
    family = HashFamily(k=k, m=m, seed=seed)
    ids = np.arange(0, 1000, 13)
    out = family(ids)
    assert out.shape == (ids.size, k)
    assert out.min() >= 0
    assert out.max() < m


@prop_settings(30)
@given(k=ks, m=ms, seed=seeds, id_val=st.integers(min_value=0, max_value=2**32))
def test_hash_deterministic_per_id(k, m, seed, id_val):
    family = HashFamily(k=k, m=m, seed=seed)
    a = family(np.array([id_val]))
    b = family(np.array([id_val, id_val]))
    np.testing.assert_array_equal(a[0], b[0])
    np.testing.assert_array_equal(b[0], b[1])


@prop_settings(30)
@given(m=st.integers(min_value=2, max_value=10**6), seed=seeds)
def test_uniform_encoding_bounded(m, seed):
    rng = np.random.default_rng(seed)
    hashed = rng.integers(0, m, size=(20, 3))
    out = encode_ids(hashed, m, "uniform")
    assert out.min() >= -1.0 - 1e-12
    assert out.max() <= 1.0 + 1e-12


@prop_settings(30)
@given(m=st.integers(min_value=2, max_value=10**6), seed=seeds)
def test_gaussian_encoding_finite(m, seed):
    rng = np.random.default_rng(seed)
    hashed = rng.integers(0, m, size=(20, 3))
    out = encode_ids(hashed, m, "gaussian")
    assert np.isfinite(out).all()


@prop_settings(20)
@given(m=st.integers(min_value=10, max_value=10**6))
def test_uniform_encoding_monotone_in_hash(m):
    hashed = np.arange(0, m, max(1, m // 17))[None, :]
    out = encode_ids(hashed, m, "uniform")
    assert np.all(np.diff(out[0]) > 0)
