"""End-to-end data pipeline: Criteo-format file -> streaming reader ->
training -> cache sizing from scanned statistics."""

import numpy as np
import pytest

from repro.core.mp_cache import EncoderCache
from repro.data.criteo import read_criteo_file, scan_statistics, write_criteo_file
from repro.models.configs import ModelConfig
from repro.models.dlrm import build_dlrm
from repro.nn.losses import bce_with_logits
from repro.nn.optim import SGD
from repro.training.metrics import roc_auc

CONFIG = ModelConfig(
    name="pipeline",
    n_dense=6,
    cardinalities=[40, 400, 80],
    embedding_dim=8,
    bottom_mlp=[16],
    top_mlp=[16],
)


@pytest.fixture(scope="module")
def click_log(tmp_path_factory):
    path = tmp_path_factory.mktemp("data") / "clicks.tsv"
    return write_criteo_file(path, CONFIG, n_rows=6000, seed=13)


class TestFileTrainingPipeline:
    def test_train_from_file_learns(self, click_log):
        rng = np.random.default_rng(0)
        model = build_dlrm(CONFIG, "table", rng)
        optimizer = SGD(model.parameters(), lr=0.2)
        # Several epochs over the file, streaming (~190 steps total).
        losses = []
        for _ in range(8):
            for batch in read_criteo_file(click_log, CONFIG, batch_size=256):
                logits = model(batch.dense, batch.sparse)
                loss, grad = bce_with_logits(logits, batch.labels)
                losses.append(loss)
                model.zero_grad()
                model.backward(grad)
                optimizer.step()
        assert np.mean(losses[-10:]) < np.mean(losses[:10]) - 0.05
        # Evaluate ranking quality on a fresh pass.
        probs, labels = [], []
        for batch in read_criteo_file(click_log, CONFIG, batch_size=512):
            probs.append(model.predict_proba(batch.dense, batch.sparse))
            labels.append(batch.labels)
        auc = roc_auc(np.concatenate(probs), np.concatenate(labels))
        assert auc > 0.52

    def test_statistics_drive_cache_sizing(self, click_log):
        """Scanned hot-ID statistics predict encoder-cache hit rates."""
        stats = scan_statistics(click_log, CONFIG)
        cache = EncoderCache(4 * 1024, CONFIG.embedding_dim)
        per_feature = cache.capacity_entries // CONFIG.n_sparse
        cache._resident = {
            f: set(stats.hottest_ids(f, per_feature))
            for f in range(CONFIG.n_sparse)
        }
        hits = total = 0
        for batch in read_criteo_file(click_log, CONFIG, batch_size=512):
            for f in range(CONFIG.n_sparse):
                mask = cache.lookup(f, batch.sparse[:, f])
                hits += int(mask.sum())
                total += mask.size
        observed = hits / total
        predicted = np.mean([
            stats.hot_traffic_fraction(f, per_feature)
            for f in range(CONFIG.n_sparse)
        ])
        assert observed > 0.2
        assert abs(observed - predicted) < 0.05
