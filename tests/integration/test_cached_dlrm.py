"""MP-Cache in the loop of a real trained DLRM: prediction quality must
survive the cached embedding fast paths (Section 4.3)."""

import numpy as np
import pytest

from repro.core.cached_inference import CachedDHE
from repro.core.mp_cache import DecoderCentroidCache, EncoderCache
from repro.data.synthetic import SyntheticCTRDataset
from repro.data.zipf import ZipfSampler
from repro.models.configs import ModelConfig
from repro.models.dlrm import build_dlrm
from repro.training.metrics import roc_auc
from repro.training.trainer import Trainer

CONFIG = ModelConfig(
    name="cached",
    n_dense=6,
    cardinalities=[300, 800, 100],
    embedding_dim=8,
    bottom_mlp=[16],
    top_mlp=[16],
)


@pytest.fixture(scope="module")
def trained():
    rng = np.random.default_rng(0)
    model = build_dlrm(CONFIG, "dhe", rng, k=32, dnn=32, h=1)
    dataset = SyntheticCTRDataset(CONFIG, seed=5, latent_dim=4)
    Trainer(model, dataset, lr=0.1).train(n_steps=150, batch_size=128)
    return model, dataset


class TestCachedDLRM:
    def test_cached_embeddings_preserve_predictions(self, trained):
        model, dataset = trained
        batch = dataset.sample_batch(512)
        exact = model.predict_proba(batch.dense, batch.sparse)

        # Swap each feature's DHE for a cached version with generous tiers.
        cached_features = []
        for f, feat in enumerate(model.embeddings.features):
            sampler = dataset.samplers[f]
            cached = CachedDHE(
                feat,
                encoder_cache=EncoderCache(64 * 1024, CONFIG.embedding_dim),
                decoder_cache=DecoderCentroidCache(128, seed=f),
            )
            cached.warm(sampler, profile_samples=2000)
            cached_features.append(cached)

        emb = np.stack(
            [
                cached_features[f].generate(batch.sparse[:, f])
                for f in range(CONFIG.n_sparse)
            ],
            axis=1,
        )
        z0 = model.bottom_mlp(batch.dense)
        interacted = model.interaction(z0, emb)
        logits = model.top_mlp(interacted)[:, 0]
        approx = 1.0 / (1.0 + np.exp(-logits))

        # Ranking quality with cached embeddings stays close to exact.
        auc_exact = roc_auc(exact, batch.labels)
        auc_cached = roc_auc(approx, batch.labels)
        assert auc_cached > auc_exact - 0.05

    def test_hot_ids_bitwise_exact(self, trained):
        model, dataset = trained
        feat = model.embeddings.features[0]
        sampler = dataset.samplers[0]
        cached = CachedDHE(
            feat, encoder_cache=EncoderCache(64 * 1024, CONFIG.embedding_dim)
        )
        cached.warm(sampler)
        hot = sampler.hottest(20)
        np.testing.assert_allclose(cached.generate(hot), feat(hot))
