"""End-to-end geo serving through the CLI: determinism and full plumbing.

The ``serve --regions`` path exercises every geo layer at once —
follow-the-sun workload synthesis, region composition, WAN-priced spill
routing, the shared event loop, and the summary printer.  Running it
twice with the same seed must produce byte-identical output (the same
reproducibility bar the cluster and single-node paths already clear),
and a failover drill must report a clean zero-loss ledger.
"""

from repro.cli import main

ARGS = [
    "serve", "--dataset", "kaggle", "--regions", "3", "--nodes", "1",
    "--queries", "100", "--qps", "1500", "--sla-ms", "50", "--seed", "3",
]


def run_cli(capsys, extra=()):
    code = main(ARGS + list(extra))
    captured = capsys.readouterr()
    assert code == 0, captured.err
    return captured.out


class TestEndToEndGeo:
    def test_geo_serve_is_deterministic(self, capsys):
        first = run_cli(capsys)
        second = run_cli(capsys)
        assert first == second
        assert "geo fleet" in first
        assert "WAN traffic" in first
        for region in ("r0", "r1", "r2"):
            assert region in first

    def test_geo_router_choice_changes_the_run(self, capsys):
        pinned = run_cli(capsys, ["--geo-router", "pinned"])
        spill = run_cli(capsys, ["--geo-router", "spill"])
        assert "0.00 MB" in pinned  # pinned pays no WAN bytes
        assert pinned != spill

    def test_failover_drill_reports_the_ledger(self, capsys):
        out = run_cli(capsys, [
            "--region-replication", "2",
            "--fail-region", "1", "--region-fail-at", "1.0",
        ])
        assert "failed regions" in out
        assert "lost" in out
