"""Real-training validation of the quality estimator's orderings.

The paper's accuracy claims (Section 3.1) come from full Criteo runs; at
mini scale we verify the *orderings* the estimator encodes actually emerge
from the numpy trainer on synthetic data: every representation learns, and
more encoder hash functions make DHE better.
"""

import numpy as np
import pytest

from repro.data.synthetic import SyntheticCTRDataset
from repro.models.configs import ModelConfig
from repro.models.dlrm import build_dlrm
from repro.training.trainer import Trainer

CONFIG = ModelConfig(
    name="ordering",
    n_dense=8,
    cardinalities=[40, 150, 400, 25, 80],
    embedding_dim=8,
    bottom_mlp=[24],
    top_mlp=[24],
)


def train_auc(rep: str, seed: int, steps: int = 200, **kwargs) -> float:
    rng = np.random.default_rng(seed)
    model = build_dlrm(CONFIG, rep, rng, **kwargs)
    dataset = SyntheticCTRDataset(CONFIG, seed=7, latent_dim=4)
    trainer = Trainer(model, dataset, lr=0.1)
    result = trainer.train(n_steps=steps, batch_size=128, eval_samples=6000)
    return result.eval_auc


class TestTrainingOrderings:
    @pytest.mark.parametrize("rep", ["table", "dhe", "select", "hybrid"])
    def test_every_representation_learns(self, rep):
        auc = train_auc(rep, seed=0, k=32, dnn=32, h=1)
        assert auc > 0.54, f"{rep} failed to learn (AUC {auc:.3f})"

    def test_more_hash_functions_help_dhe(self):
        """Figure 4's k-dependence, observed in real training."""
        low = np.mean([train_auc("dhe", seed=s, k=2, dnn=32, h=1) for s in (0, 1)])
        high = np.mean([train_auc("dhe", seed=s, k=64, dnn=32, h=1) for s in (0, 1)])
        assert high > low + 0.01

    def test_hybrid_not_worse_than_table(self):
        """Hybrid strictly adds capacity over the table slice; at equal
        training budget it should match or beat the table baseline."""
        table = np.mean([train_auc("table", seed=s) for s in (0, 1)])
        hybrid = np.mean(
            [train_auc("hybrid", seed=s, k=32, dnn=32, h=1) for s in (0, 1)]
        )
        assert hybrid > table - 0.02
