"""End-to-end: offline plan -> MP-Cache -> scheduler -> simulator.

Asserts the paper's headline serving behaviors (Figures 10, 15, 17;
Tables 2, 4) as orderings over the full pipeline.
"""

import pytest

from repro.experiments.setup import (
    build_schedulers,
    hw2_devices,
    run_serving_comparison,
)
from repro.models.configs import KAGGLE, TERABYTE
from repro.serving.workload import ServingScenario

SUBSET = ("table-cpu", "table-gpu", "dhe-gpu", "hybrid-gpu", "table-switch", "mp-rec")


@pytest.fixture(scope="module")
def kaggle_results():
    scenario = ServingScenario.paper_default(n_queries=1500, seed=1)
    return run_serving_comparison(KAGGLE, scenario, subset=SUBSET)


class TestFig10Orderings:
    def test_mp_rec_beats_every_baseline(self, kaggle_results):
        mp = kaggle_results["mp-rec"].correct_prediction_throughput
        for name, result in kaggle_results.items():
            if name != "mp-rec":
                assert mp >= result.correct_prediction_throughput * 0.99, name

    def test_static_compute_reprs_degrade(self, kaggle_results):
        """Fig 10: static DHE/hybrid fall well below the table-CPU baseline."""
        base = kaggle_results["table-cpu"].correct_prediction_throughput
        assert kaggle_results["dhe-gpu"].correct_prediction_throughput < 0.8 * base
        assert kaggle_results["hybrid-gpu"].correct_prediction_throughput < 0.8 * base

    def test_mp_rec_factor_in_paper_range(self, kaggle_results):
        """Paper: 2.49x on Kaggle; we accept 1.5-3.5x."""
        ratio = (
            kaggle_results["mp-rec"].correct_prediction_throughput
            / kaggle_results["table-cpu"].correct_prediction_throughput
        )
        assert 1.5 < ratio < 3.5

    def test_mp_rec_accuracy_above_table(self, kaggle_results):
        """Insight 1: served accuracy rises by activating DHE/hybrid paths."""
        assert (
            kaggle_results["mp-rec"].mean_accuracy
            > kaggle_results["table-cpu"].mean_accuracy + 0.02
        )

    def test_mp_rec_achievable_accuracy_matches_hybrid(self, kaggle_results):
        """Table 2: MP-Rec's best activated path is the hybrid one."""
        breakdown = kaggle_results["mp-rec"].switching_breakdown()
        assert any(label.startswith("HYBRID") for label in breakdown)

    def test_fig15_kaggle_keeps_cpu_table_path(self, kaggle_results):
        """Fig 15: TBL(CPU) remains active on Kaggle (small queries)."""
        breakdown = kaggle_results["mp-rec"].switching_breakdown()
        assert breakdown.get("TABLE(CPU)", 0.0) > 0.01


class TestTerabyte:
    @pytest.fixture(scope="class")
    def results(self):
        scenario = ServingScenario.paper_default(n_queries=1200, seed=2)
        return run_serving_comparison(
            TERABYTE, scenario, subset=("table-cpu", "table-gpu", "mp-rec")
        )

    def test_mp_rec_factor(self, results):
        """Paper: 3.76x on Terabyte; we accept > 2x."""
        ratio = (
            results["mp-rec"].correct_prediction_throughput
            / results["table-cpu"].correct_prediction_throughput
        )
        assert ratio > 2.0

    def test_fig15_terabyte_prefers_gpu_table(self, results):
        """Fig 15: TBL(GPU) dominates TBL(CPU) for the Terabyte model."""
        breakdown = results["mp-rec"].switching_breakdown()
        gpu_share = breakdown.get("TABLE(GPU)", 0.0)
        cpu_share = breakdown.get("TABLE(CPU)", 0.0)
        assert gpu_share + cpu_share > 0  # tables used at all
        # GPU path carries at least as much table traffic as CPU.
        assert gpu_share >= cpu_share * 0.8


class TestHW2:
    def test_table4_shape(self):
        """HW-2: MP-Rec matches DHE accuracy at >= CPU-table throughput."""
        devices = hw2_devices()
        scenario = ServingScenario.paper_default(n_queries=800, seed=3)
        results = run_serving_comparison(
            KAGGLE, scenario, devices=devices, subset=("mp-rec",)
        )
        schedulers = build_schedulers(KAGGLE, devices)
        assert "hybrid-gpu" not in schedulers  # 2.29 GB cannot fit 200 MB
        mp = results["mp-rec"]
        assert mp.mean_accuracy > 78.7
        assert mp.correct_prediction_throughput > 0


class TestCacheAblationEndToEnd:
    def test_cache_improves_mp_rec(self):
        """Insight 4: disabling MP-Cache lowers correct-prediction
        throughput or accuracy (DHE/hybrid become rarely feasible)."""
        scenario = ServingScenario.paper_default(n_queries=1000, seed=4)
        with_cache = run_serving_comparison(
            KAGGLE, scenario, with_cache=True, subset=("mp-rec",)
        )["mp-rec"]
        without = run_serving_comparison(
            KAGGLE, scenario, with_cache=False, subset=("mp-rec",)
        )["mp-rec"]
        gain = (
            with_cache.correct_prediction_throughput
            - without.correct_prediction_throughput
        )
        accuracy_gain = with_cache.mean_accuracy - without.mean_accuracy
        assert gain > 0 or accuracy_gain > 0
