# Developer entry points. `make test` is the tier-1 gate; `make bench-smoke`
# runs a fast subset of the figure benchmarks; `make perf-smoke` is the
# perf-regression gate (fails when the engine-vs-reference speedup, the
# vectorized workload generation, the autoscaler's node-seconds savings,
# or the control plane's Pareto domination drops below its pinned floor);
# `make lint` byte-compiles every tree and
# checks the suite still collects (no external linters are assumed in the
# container); `make docstrings-check` fails on undocumented public API in
# the serving kernel and MP-Rec core; `make examples-smoke` +
# `make docs-check` back the CI docs job (every example runs green, every
# relative link resolves); `make profile` cProfiles the `serve` hot path.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench-smoke perf-smoke lint check examples-smoke docs-check \
	docstrings-check profile profile-fast

test:
	$(PYTHON) -m pytest -x -q

# (the engine-scale benchmark lives in perf-smoke; listing it here too
# would run the heaviest bench twice per CI pass)
bench-smoke:
	$(PYTHON) -m pytest -q \
		benchmarks/test_fig11_throughput_breakdown.py

perf-smoke:
	$(PYTHON) -m pytest -q \
		benchmarks/test_serving_engine_scale.py \
		benchmarks/test_workload_generation.py \
		benchmarks/test_runtime_switching.py \
		benchmarks/test_autoscaling.py \
		benchmarks/test_cluster_cache.py \
		benchmarks/test_ablation_scheduler.py \
		benchmarks/test_geo_serving.py

lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples
	$(PYTHON) -m pytest --collect-only -q > /dev/null

docstrings-check:
	$(PYTHON) scripts/check_docstrings.py

examples-smoke:
	@set -e; for example in examples/*.py; do \
		echo "== $$example =="; \
		$(PYTHON) $$example; \
	done

docs-check:
	$(PYTHON) scripts/check_links.py

profile:
	$(PYTHON) -m cProfile -s cumtime -m repro serve \
		--queries 20000 --qps 20000 --max-batch 64 --batch-timeout-ms 2 \
		| head -45

# The array fast path at scale (one order of magnitude more queries than
# `make profile` — the vectorized engine makes that the interesting regime).
profile-fast:
	$(PYTHON) -m cProfile -s cumtime -m repro serve \
		--fastpath --streaming --queries 1000000 --qps 24000 \
		--max-batch 256 --batch-timeout-ms 4 --shed-policy deadline-aware \
		| head -45

check: lint docstrings-check test bench-smoke perf-smoke docs-check examples-smoke
