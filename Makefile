# Developer entry points. `make test` is the tier-1 gate; `make bench-smoke`
# runs a fast subset of the figure benchmarks; `make lint` byte-compiles
# every tree and checks the suite still collects (no external linters are
# assumed in the container).

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench-smoke lint check

test:
	$(PYTHON) -m pytest -x -q

bench-smoke:
	$(PYTHON) -m pytest -q \
		benchmarks/test_serving_engine_scale.py \
		benchmarks/test_fig11_throughput_breakdown.py

lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples
	$(PYTHON) -m pytest --collect-only -q > /dev/null

check: lint test bench-smoke
