# Developer entry points. `make test` is the tier-1 gate; `make bench-smoke`
# runs a fast subset of the figure benchmarks; `make lint` byte-compiles
# every tree and checks the suite still collects (no external linters are
# assumed in the container); `make examples-smoke` + `make docs-check` back
# the CI docs job (every example runs green, every relative link resolves).

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench-smoke lint check examples-smoke docs-check

test:
	$(PYTHON) -m pytest -x -q

bench-smoke:
	$(PYTHON) -m pytest -q \
		benchmarks/test_serving_engine_scale.py \
		benchmarks/test_fig11_throughput_breakdown.py

lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples
	$(PYTHON) -m pytest --collect-only -q > /dev/null

examples-smoke:
	@set -e; for example in examples/*.py; do \
		echo "== $$example =="; \
		$(PYTHON) $$example; \
	done

docs-check:
	$(PYTHON) scripts/check_links.py

check: lint test bench-smoke docs-check examples-smoke
