"""Deploy recommendation on memory-constrained hardware (HW-2, Table 4).

Walks Algorithm 1 on a 1 GB CPU + 200 MB GPU: the planner downsizes the
table to dim 4 to fit the accuracy-optimal DHE beside it, the GPU can hold
only DHE stacks, and MP-Rec still matches DHE's accuracy at better-than-CPU
throughput.

    python examples/memory_constrained_deployment.py
"""

from repro.core.offline import OfflinePlanner
from repro.core.online import MultiPathScheduler
from repro.experiments.setup import default_cache_effect, hw2_devices
from repro.core.representations import paper_configs
from repro.models.configs import KAGGLE
from repro.quality.estimator import QualityEstimator
from repro.serving.simulator import ServingSimulator
from repro.serving.workload import ServingScenario


def main() -> None:
    cpu, gpu = hw2_devices()
    print("HW-2 design point:")
    print(f"  {cpu.name}: {cpu.dram_capacity / 1e9:.2f} GB DRAM")
    print(f"  {gpu.name}: {gpu.dram_capacity / 1e6:.0f} MB HBM")

    estimator = QualityEstimator("kaggle")
    planner = OfflinePlanner(KAGGLE, estimator)
    plan = planner.plan([cpu, gpu])

    print("\nAlgorithm 1 mapping decisions:")
    for device in (cpu, gpu):
        used = plan.device_bytes(device.name)
        print(f"  {device.name} ({used / 1e6:.0f} MB used):")
        for rep in plan.reps_on(device.name):
            print(
                f"    {rep.display:22s} {rep.total_bytes(KAGGLE) / 1e6:7.1f} MB"
                f"  acc {plan.accuracies[rep.display]:.3f}%"
            )

    print("\nNote: the full-dim table (2.16 GB) and hybrid (2.29 GB) do not")
    print("fit anywhere; the planner pairs a dim-4 table with the k=2048 DHE.")

    effect = default_cache_effect(KAGGLE, paper_configs(KAGGLE)["dhe"])
    paths = plan.build_paths(
        encoder_hit_rate=effect.encoder_hit_rate,
        decoder_speedup=effect.decoder_speedup,
    )
    scenario = ServingScenario.paper_default(n_queries=1500)
    result = ServingSimulator(
        MultiPathScheduler(paths), track_energy=False
    ).run(scenario)

    print("\nServing on HW-2 with MP-Rec:")
    print(f"  correct predictions/s : {result.correct_prediction_throughput:,.0f}")
    print(f"  served accuracy       : {result.mean_accuracy:.3f}%")
    print(f"  best activated path   : "
          f"{max(r.accuracy for r in result.records):.3f}% accuracy")
    print(f"  SLA violations        : {result.violation_rate * 100:.2f}%")


if __name__ == "__main__":
    main()
