"""Tour of the cluster MP-Cache tier: per-node hot-row caches under real
routing, switching, and elastic membership.

    python examples/cached_cluster.py [--queries 40000]

Three exhibits:
  1. The skewed-traffic showdown — a fixed fleet serving Zipf-skewed
     user traffic under locality routing (the hot group's owner drowns),
     cache-oblivious least-loaded routing (spreads, but pays cold
     fetches), and cache-affinity routing (spreads to cache-warm nodes).
  2. The accounting — every row lookup split into hits and misses,
     every fill byte priced over the fabric, straight from the run's
     `CacheStats`.
  3. Warm-on-join — an elastic fleet whose scale-up streams the joining
     node's cache warm alongside its shard slice, and whose drain
     donates its hot set to the survivors.
"""

import argparse

import numpy as np

from repro.analysis.sharding import greedy_shard
from repro.core.online import StaticScheduler
from repro.core.paths import ExecutionPath, PathProfile
from repro.core.representations import RepresentationConfig
from repro.data.queries import Query, QuerySet, arrival_times
from repro.data.zipf import ZipfSampler
from repro.hardware.catalog import GPU_V100
from repro.hardware.topology import ETHERNET_25G
from repro.serving.autoscale import AutoscaleController
from repro.serving.cluster import ClusterSimulator, ShardMap
from repro.serving.workload import ServingScenario

SLA_S = 0.015
N_NODES = 4
DIM = 32
CARDINALITIES = [2_000_000, 1_500_000, 1_200_000, 1_000_000, 800_000, 500_000]
CACHE_MB = 16


def header(title: str) -> None:
    print(f"\n=== {title} ===")


def node_path() -> ExecutionPath:
    """A synthetic per-node serving path (~4.6k QPS at full batches)."""
    sizes = np.unique(np.geomspace(1, 4096, 33).astype(int)).astype(float)
    return ExecutionPath(
        rep=RepresentationConfig("table", DIM),
        device=GPU_V100,
        accuracy=79.0,
        profile=PathProfile(sizes=sizes, latencies=0.0004 + 3e-6 * sizes),
        label="TABLE",
    )


def skewed_scenario(n_queries: int) -> ServingScenario:
    """A diurnal cycle of heavy-user traffic: a few users (and therefore
    a few shard groups) dominate."""
    rng = np.random.default_rng(11)
    arrivals = arrival_times(
        n_queries, 8_000.0, rng=rng, process="diurnal",
        period_s=5.0, amplitude=0.7,
    )
    users = ZipfSampler(20_000, alpha=1.25, seed=3).sample(n_queries)
    queries = [
        Query(index=i, size=64, arrival_s=float(t), user=int(u))
        for i, (t, u) in enumerate(zip(arrivals, users))
    ]
    return ServingScenario(queries=QuerySet(queries=queries), sla_s=SLA_S)


def make_cluster(router: str, cache_mb: int, autoscale=None, n_nodes=N_NODES):
    plan = greedy_shard(CARDINALITIES, DIM, n_nodes)
    return ClusterSimulator(
        StaticScheduler([node_path()]), plan, router=router, replication=1,
        link=ETHERNET_25G, max_batch_size=16, batch_timeout_s=0.004,
        cache_bytes=cache_mb * 2**20, autoscale=autoscale,
    )


def row(label: str, cluster) -> None:
    res = cluster.result
    cache = cluster.cache
    line = (
        f"{label:28s} violations={res.violation_rate * 100:5.1f}% "
        f"p99={res.p99_latency_s * 1e3:7.1f} ms"
    )
    if cache is not None and cache.lookups:
        line += (
            f"  hit rate={cache.hit_rate * 100:5.1f}% "
            f"fills={cache.fill_bytes / 2**20:6.1f} MB"
        )
    print(line)


def showdown(scenario) -> ClusterSimulator:
    header("1. Fixed fleet, skewed traffic: three routers")
    shard_map = ShardMap.from_plan(greedy_shard(CARDINALITIES, DIM, N_NODES), 1)
    share = np.bincount(
        [shard_map.group_of(q) for q in scenario.queries], minlength=N_NODES
    ) / len(scenario.queries)
    print(
        "shard-group traffic share:   "
        + "  ".join(f"g{g}={s * 100:.0f}%" for g, s in enumerate(share))
    )
    locality = make_cluster("locality", CACHE_MB).run(scenario)
    oblivious = make_cluster("least-loaded", 0).run(scenario)
    affinity_sim = make_cluster("cache-affinity", CACHE_MB)
    affinity = affinity_sim.run(scenario)
    row("locality (cache idle)", locality)
    row("least-loaded, no cache", oblivious)
    row("cache-affinity + cache", affinity)
    print(
        f"{'':28s} locality pins the hot group on one owner; "
        "cache-affinity spreads it to warm nodes"
    )
    return affinity_sim, affinity


def accounting(sim, cluster) -> None:
    header("2. The accounting (every fill byte explained)")
    c = cluster.cache
    row_bytes = sim.cache_config.row_bytes
    print(f"row lookups offered          {c.lookups:>12,}")
    print(f"  hits (local DRAM reads)    {c.hits:>12,}  "
          f"({c.hit_bytes / 2**20:.1f} MB, {c.hit_s * 1e3:.2f} ms charged)")
    print(f"  misses (fabric fills)      {c.misses:>12,}  "
          f"({c.fill_bytes / 2**20:.1f} MB over {sim.link.name})")
    assert c.hits + c.misses == c.lookups
    assert c.fill_bytes == c.misses * row_bytes
    print("identities: hits + misses == lookups; "
          "fill bytes == misses x row bytes  [exact]")


def warm_on_join(n_queries: int) -> None:
    header("3. Elastic fleet: joins warm their cache, drains donate")
    controller = AutoscaleController(
        min_nodes=2, max_nodes=N_NODES,
        schedule=((1.5, "up"), (6.5, "down")),
    )
    scenario = skewed_scenario(n_queries)
    cluster = make_cluster(
        "cache-affinity", CACHE_MB, autoscale=controller
    ).run(scenario)
    row("elastic 2..4 + cache", cluster)
    for event in cluster.scale_events:
        if event.kind == "up":
            print(
                f"  t={event.time_s:5.2f} s  join: warmed "
                f"{event.warm_bytes / 2**20:7.1f} MB shard slice + "
                f"{event.cache_warm_bytes / 2**20:5.1f} MB cache "
                f"in {event.warm_s * 1e3:.1f} ms"
            )
        else:
            print(
                f"  t={event.time_s:5.2f} s  drain: donated "
                f"{event.cache_donated_bytes / 2**20:5.1f} MB of hot rows "
                f"to the survivors, re-injected {event.reinjected} queries"
            )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--queries", type=int, default=40_000)
    args = parser.parse_args()

    scenario = skewed_scenario(args.queries)
    sim, affinity = showdown(scenario)
    accounting(sim, affinity)
    warm_on_join(args.queries // 2)


if __name__ == "__main__":
    main()
