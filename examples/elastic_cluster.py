"""Tour of elastic autoscaling: an event-kernel fleet that grows into a
flash crowd and drains back to the floor, with live shard handoff.

    python examples/elastic_cluster.py [--queries 20000]

Three exhibits:
  1. The capacity planner's dilemma — a diurnal cycle with a flash crowd
     served by a trough-sized fleet (drowns), a peak-sized fleet (pays
     for idle iron all night), and the elastic fleet (tracks the load).
  2. The scaling trace — every join's shard-slice warm (bytes, window)
     and every drain's zero-loss re-injection, straight from the
     run's `ScaleEvent` records.
  3. The real deployment — the KAGGLE model on HW-1 nodes through
     `run_autoscaled_serving`, where a join warms ~1.5 GB of real
     embedding tables over the fabric.
"""

import argparse

import numpy as np

from repro.analysis.sharding import greedy_shard
from repro.core.online import StaticScheduler
from repro.core.paths import ExecutionPath, PathProfile
from repro.core.representations import RepresentationConfig
from repro.data.queries import Query, QuerySet, arrival_times
from repro.experiments.setup import run_autoscaled_serving, run_cluster_serving
from repro.hardware.catalog import GPU_V100
from repro.models.configs import KAGGLE
from repro.serving.autoscale import AutoscaleController
from repro.serving.cluster import ClusterSimulator
from repro.serving.workload import ServingScenario

SLA_S = 0.015
MIN_NODES, MAX_NODES = 2, 6


def header(title: str) -> None:
    print(f"\n=== {title} ===")


def node_path() -> ExecutionPath:
    """A synthetic per-node serving path (~1.2k QPS at full batches)."""
    sizes = np.unique(np.geomspace(1, 4096, 33).astype(int)).astype(float)
    return ExecutionPath(
        rep=RepresentationConfig("table", 16),
        device=GPU_V100,
        accuracy=79.0,
        profile=PathProfile(sizes=sizes, latencies=0.0003 + 0.0008 * sizes),
        label="TABLE",
    )


def diurnal_flash_scenario(n_queries: int) -> ServingScenario:
    """A compressed day/night cycle with a flash crowd on the peak."""
    rng = np.random.default_rng(7)
    mean_qps = 2_000.0
    base = arrival_times(
        n_queries, mean_qps, rng=rng, process="diurnal",
        period_s=12.0, amplitude=0.75,
    )
    spike = 14.0 + arrival_times(4000, 2_000.0, rng=rng, process="poisson")
    merged = np.sort(np.concatenate([base, spike]))
    queries = [
        Query(index=i, size=1, arrival_s=float(t))
        for i, t in enumerate(merged)
    ]
    return ServingScenario(queries=QuerySet(queries=queries), sla_s=SLA_S)


def make_cluster(n_nodes: int, autoscale=None) -> ClusterSimulator:
    plan = greedy_shard(
        [1_000_000, 800_000, 700_000, 600_000, 500_000, 400_000], 16, n_nodes
    )
    return ClusterSimulator(
        StaticScheduler([node_path()]), plan, router="least-loaded",
        replication=2, max_batch_size=16, batch_timeout_s=0.008,
        autoscale=autoscale,
    )


def row(label: str, cluster) -> None:
    res = cluster.result
    print(
        f"{label:24s} violations={res.violation_rate * 100:5.1f}% "
        f"node-seconds={cluster.node_seconds:7.1f} "
        f"fleet energy={cluster.fleet_energy_j / 1e3:6.2f} kJ"
    )


def capacity_dilemma(scenario) -> None:
    header("1. Trough-sized vs peak-sized vs elastic")
    controller = AutoscaleController(
        min_nodes=MIN_NODES, max_nodes=MAX_NODES,
        hi_pressure=0.75, lo_pressure=0.1, util_hi=0.9,
        patience=4, patience_down=48, cooldown_s=0.25,
    )
    static_min = make_cluster(MIN_NODES).run(scenario)
    static_max = make_cluster(MAX_NODES).run(scenario)
    elastic = make_cluster(MAX_NODES, autoscale=controller).run(scenario)
    row(f"static {MIN_NODES} nodes", static_min)
    row(f"static {MAX_NODES} nodes", static_max)
    row(f"elastic {MIN_NODES}..{MAX_NODES}", elastic)
    saved = 1.0 - elastic.node_seconds / static_max.node_seconds
    print(
        f"{'':24s} elastic fleet: {saved * 100:.0f}% fewer node-seconds, "
        f"{elastic.scale_ups} joins, {elastic.scale_downs} drains, "
        f"lost={elastic.lost}"
    )
    scaling_trace(elastic)


def scaling_trace(elastic) -> None:
    header("2. The scaling trace (joins warm their shard slice)")
    for event in elastic.scale_events:
        if event.kind == "up":
            detail = (
                f"warmed {event.warm_bytes / 1e6:6.1f} MB in "
                f"{event.warm_s * 1e3:5.2f} ms"
            )
        else:
            detail = f"re-injected {event.reinjected} queued queries"
        print(
            f"  t={event.time_s:6.2f} s  {event.kind:4s} -> "
            f"{event.n_members} members  ({detail})"
        )


def real_deployment(n_queries: int) -> None:
    header("3. KAGGLE on HW-1 nodes (mp-rec scheduler, 2..4 nodes)")
    scenario = ServingScenario.flash_crowd(
        n_queries=n_queries, qps=6_000.0, sla_s=0.010, spike_factor=3.0,
    )
    static = run_cluster_serving(
        KAGGLE, scenario, n_nodes=4, replication=2,
        max_batch_size=8, batch_timeout_s=0.001,
    )
    cluster = run_autoscaled_serving(
        KAGGLE, scenario, min_nodes=2, max_nodes=4, replication=2,
        max_batch_size=8, batch_timeout_s=0.001, patience=4, cooldown_s=0.1,
    )
    row("static 4 nodes", static)
    row("elastic 2..4", cluster)
    for event in cluster.scale_events[:4]:
        if event.kind == "up":
            print(
                f"  t={event.time_s:6.3f} s  join warmed "
                f"{event.warm_bytes / 1e9:.2f} GB of embedding tables "
                f"in {event.warm_s * 1e3:.1f} ms"
            )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--queries", type=int, default=20_000)
    args = parser.parse_args()

    scenario = diurnal_flash_scenario(args.queries)
    capacity_dilemma(scenario)
    real_deployment(args.queries)


if __name__ == "__main__":
    main()
