"""Multi-node scaling: sharding plans and the DHE single-node alternative
(Section 6.9 / Figure 18).

    python examples/multi_node_scaling.py
"""

from repro.analysis.scaling import ZionEXModel
from repro.analysis.sharding import greedy_shard, round_robin_shard
from repro.models.configs import TERABYTE


def sharding_report() -> None:
    print("=== Sharding the Terabyte model across nodes ===")
    for n_nodes in (2, 4, 8, 16):
        greedy = greedy_shard(TERABYTE.cardinalities, TERABYTE.embedding_dim, n_nodes)
        naive = round_robin_shard(
            TERABYTE.cardinalities, TERABYTE.embedding_dim, n_nodes
        )
        loads = greedy.node_bytes() / 1e9
        print(
            f"  {n_nodes:2d} nodes: per-node {loads.min():.2f}-{loads.max():.2f} GB"
            f"  imbalance {greedy.imbalance:.2f} (round-robin {naive.imbalance:.2f})"
            f"  all-to-all {greedy.alltoall_bytes_per_sample()} B/sample"
        )


def scaling_report() -> None:
    print("\n=== Iteration time: sharded tables vs single-node DHE ===")
    model = ZionEXModel()
    workload = dict(
        batch_per_iter=65536,
        model_flops_per_sample=25e6,
        embedding_vector_bytes=26 * 64 * 4,
        dense_grad_bytes=30e6,
    )
    print(f"  {'nodes':>5s} {'GPUs':>5s} {'table ms':>9s} {'comm %':>7s} "
          f"{'DHE ms':>7s} {'reduction':>9s}")
    for n in (1, 2, 4, 8, 16):
        cmp = model.compare(n_nodes=n, **workload)
        print(
            f"  {n:5d} {n * 8:5d} {cmp.table_time_per_iter_s * 1e3:9.2f} "
            f"{cmp.table_comm_fraction * 100:6.1f}% "
            f"{cmp.dhe_time_per_iter_s * 1e3:7.2f} "
            f"{cmp.time_reduction * 100:8.1f}%"
        )
    print("\n  (paper: ~40% exposed communication; ~36% reduction at 128 GPUs)")


if __name__ == "__main__":
    sharding_report()
    scaling_report()
