"""Characterize embedding representations across hardware platforms
(the Section 3 design-space exploration, Figures 5 and 7).

    python examples/accelerator_characterization.py
"""

from repro.analysis.breakdown import breakdown_table, slowdown_vs
from repro.core.representations import RepresentationConfig, paper_configs
from repro.hardware.catalog import DEVICE_CATALOG, CPU_BROADWELL, GPU_V100
from repro.hardware.energy import energy_per_query
from repro.hardware.latency import estimate_breakdown
from repro.hardware.topology import plan_ipu_placement
from repro.models.configs import KAGGLE


def operator_breakdowns() -> None:
    print("=== Operator breakdown (Kaggle, batch 2048) ===")
    stack = dict(k=1024, dnn=128, h=2)
    reps = {
        "table": RepresentationConfig("table", 16),
        "dhe": RepresentationConfig("dhe", 16, **stack),
        "select": RepresentationConfig("select", 16, n_dhe_features=3, **stack),
        "hybrid": RepresentationConfig("hybrid", 24, table_dim=16, dhe_dim=8, **stack),
    }
    for device in (CPU_BROADWELL, GPU_V100):
        breakdowns = breakdown_table(reps, KAGGLE, device, 2048)
        slowdowns = slowdown_vs(breakdowns, "table")
        print(f"\n  {device.name}")
        for name, bd in breakdowns.items():
            print(
                f"    {name:7s} {bd.total * 1e3:8.2f} ms ({slowdowns[name]:5.2f}x)"
                f"  embed {bd.embedding * 1e3:7.3f}  enc+dec "
                f"{(bd.encoder + bd.decoder) * 1e3:8.3f}  dense {bd.dense_compute * 1e3:7.3f}"
            )


def accelerator_sweep() -> None:
    print("\n=== Accelerator throughput & energy (query size 128) ===")
    configs = paper_configs(KAGGLE)
    base = None
    for rep_name in ("table", "dhe", "hybrid"):
        rep = configs[rep_name]
        print(f"\n  {rep_name}:")
        for device in DEVICE_CATALOG.values():
            spec = device
            if device.kind == "ipu" and device.n_chips > 1:
                spec = plan_ipu_placement(rep.embedding_bytes(KAGGLE), device).device
            bd = estimate_breakdown(rep, KAGGLE, spec, 128)
            throughput = spec.concurrency * 128 / bd.total
            if base is None:
                base = throughput
            energy_mj = energy_per_query(spec, bd) / 128 * 1e3
            print(
                f"    {device.name:14s} {throughput / base:7.2f}x vs table-CPU"
                f"  ({bd.total * 1e3:6.2f} ms, {energy_mj:7.3f} mJ/sample)"
            )


if __name__ == "__main__":
    operator_breakdowns()
    accelerator_sweep()
