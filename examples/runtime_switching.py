"""Runtime representation switching: re-shaping work as load shifts.

Two demos of :class:`repro.core.switching.SwitchController` riding on the
serving kernel:

  1. A diurnal day/night cycle over a synthetic representation pair with
     the Figure-3 batch-size crossover — dynamic switching beats both
     static residencies on SLA violations, paying the Figure-15
     load/teardown window on the device timeline at every swap.
  2. The real KAGGLE deployment through ``repro serve --switching``'s
     library entry point (`run_switching_serving`): one resident
     representation per device, swapped under a bursty overload.

Run: ``python examples/runtime_switching.py``
"""

import numpy as np

from repro.core.online import StaticScheduler
from repro.core.paths import ExecutionPath, PathProfile
from repro.core.representations import RepresentationConfig
from repro.core.switching import SwitchController
from repro.data.queries import Query, QuerySet, arrival_times
from repro.experiments.setup import run_switching_serving
from repro.hardware.catalog import GPU_V100
from repro.models.configs import KAGGLE
from repro.serving.simulator import ServingSimulator
from repro.serving.workload import ServingScenario

SLA_S = 0.013


def affine_path(kind, accuracy, base_s, per_sample_s, label):
    sizes = np.unique(np.geomspace(1, 4096, 33).astype(int)).astype(float)
    rep = (
        RepresentationConfig("hybrid", 16, k=8, dnn=8, h=1, table_dim=8, dhe_dim=8)
        if kind == "hybrid" else RepresentationConfig("table", 16)
    )
    return ExecutionPath(
        rep=rep, device=GPU_V100, accuracy=accuracy,
        profile=PathProfile(sizes=sizes, latencies=base_s + per_sample_s * sizes),
        label=label,
    )


def diurnal_demo():
    print("=" * 64)
    print("1. Diurnal cycle: dynamic switching vs static residency")
    print("=" * 64)
    table = lambda: affine_path("table", 79.0, 0.0003, 0.0008, "TABLE")  # noqa: E731
    hybrid = lambda: affine_path("hybrid", 81.0, 0.007, 0.00005, "HYBRID")  # noqa: E731
    arrivals = arrival_times(
        13_000, 650.0, rng=np.random.default_rng(42),
        process="diurnal", period_s=10.0, amplitude=0.9,
    )
    scenario = ServingScenario(
        queries=QuerySet(queries=[
            Query(index=i, size=1, arrival_s=float(t))
            for i, t in enumerate(arrivals)
        ]),
        sla_s=SLA_S,
    )

    def simulate(resident, controller=None):
        sim = ServingSimulator(
            StaticScheduler([resident]), track_energy=False,
            max_batch_size=16, batch_timeout_s=0.008,
            switch_controller=controller,
        )
        return sim.run(scenario)

    controller = SwitchController(
        {GPU_V100.name: [table(), hybrid()]},
        hi_pressure=0.75, lo_pressure=0.63, util_hi=0.95,
        patience=4, cooldown_s=1.0, headroom=0.9,
        load_s=0.080, teardown_s=0.020,
    )
    runs = {
        "static TABLE": simulate(table()),
        "static HYBRID": simulate(hybrid()),
        "dynamic switching": simulate(hybrid(), controller),
    }
    for name, result in runs.items():
        print(f"  {name:18s} SLA violations {result.violation_rate * 100:5.1f}%")
    print(f"  switches: {len(controller.events)} "
          f"(+{controller.total_overhead_s * 1e3:.0f} ms of load/teardown "
          "charged on the GPU timeline)")
    for event in controller.events:
        print(f"    t={event.time_s:5.2f}s  {event.from_label:>6s} -> "
              f"{event.to_label:<6s} serving again at t={event.ready_s:.2f}s")


def real_model_demo():
    print()
    print("=" * 64)
    print("2. KAGGLE deployment, one resident representation per device")
    print("=" * 64)
    # On KAGGLE's profiled GPU paths the table representation is fastest
    # at every batch size, so switching is the ISSUE's accuracy story:
    # once traffic proves calm, the controller swaps in the
    # higher-accuracy hybrid representation, paying one real PCIe load
    # (~236 ms of blocked GPU time) for +0.2% accuracy on every query
    # after it. Long patience/cooldown keep heavy-tailed query sizes from
    # thrashing the residency.
    scenario = ServingScenario.diurnal(
        n_queries=24_000, qps=1200.0, sla_s=0.015, seed=3,
        amplitude=0.6, period_s=20.0,
    )
    result, controller = run_switching_serving(
        KAGGLE, scenario, max_batch_size=32, batch_timeout_s=0.004,
        lo_pressure=0.4, hi_pressure=1.0, patience=10, cooldown_s=3.0,
    )
    print(f"  violations {result.violation_rate * 100:.1f}%  "
          f"p99 {result.p99_latency_s * 1e3:.1f} ms  "
          f"served accuracy {result.mean_accuracy:.3f}% "
          "(static table: 78.790%)")
    print("  residency breakdown (share of served queries):")
    for label, share in result.switching_breakdown().items():
        print(f"    {label:16s} {share * 100:5.1f}%")
    print(f"  switches: {len(controller.events)}")
    for event in controller.events[:5]:
        print(f"    t={event.time_s * 1e3:7.1f} ms  {event.device}: "
              f"{event.from_label} -> {event.to_label} "
              f"(+{event.overhead_s * 1e3:.1f} ms)")


if __name__ == "__main__":
    diurnal_demo()
    real_model_demo()
