"""Tour of the unified SLO autopilot: one control plane pricing every
knob the fleet has — switch representation, scale membership, re-warm a
cache, swap the router — against one cost function.

    python examples/autopilot.py [--queries 20000]

Three exhibits:
  1. One knob vs four — the diurnal + flash-crowd workload served by a
     static floor fleet, a static ceiling fleet, the stacked-but-
     independent PR-3/4/5 controllers, and the autopilot.  Cost is
     joule-equivalents: fleet energy + node-seconds at 1 W/node.
  2. The decision trace — every committed action with the predicted
     cost of everything it rejected (`ClusterResult.control_decisions`),
     showing the escalation ladder emerge from prices alone: re-routes
     and re-warms are nearly free, a switch costs milliseconds of node
     time, a join costs a warm window plus rented iron.
  3. The real deployment — the KAGGLE model through
     `run_autopilot_serving`, decisions priced off real embedding-table
     bytes.
"""

import argparse

import numpy as np

from repro.analysis.sharding import greedy_shard
from repro.core.online import StaticScheduler
from repro.core.paths import ExecutionPath, PathProfile
from repro.core.representations import RepresentationConfig
from repro.core.switching import SwitchController
from repro.data.queries import Query, QuerySet, arrival_times
from repro.experiments.setup import run_autopilot_serving
from repro.hardware.catalog import GPU_V100
from repro.models.configs import KAGGLE
from repro.serving.autoscale import AutoscaleController
from repro.serving.cluster import ClusterSimulator
from repro.serving.controlplane import ControlPlane, format_decision
from repro.serving.workload import ServingScenario

SLA_S = 0.015
MIN_NODES, MAX_NODES = 2, 6
SIZES = np.unique(np.geomspace(1, 4096, 33).astype(int)).astype(float)


def header(title: str) -> None:
    print(f"\n=== {title} ===")


def node_paths() -> tuple[ExecutionPath, ExecutionPath]:
    """Two synthetic residencies: accurate-but-slow vs fast-but-coarse."""
    accurate = ExecutionPath(
        rep=RepresentationConfig("table", 16),
        device=GPU_V100,
        accuracy=79.5,
        profile=PathProfile(sizes=SIZES, latencies=0.0003 + 0.0012 * SIZES),
        label="ACCURATE",
    )
    fast = ExecutionPath(
        rep=RepresentationConfig("dhe", 16, k=4, dnn=64, h=1),
        device=GPU_V100,
        accuracy=78.0,
        profile=PathProfile(sizes=SIZES, latencies=0.0003 + 0.0004 * SIZES),
        label="FAST",
    )
    return accurate, fast


def diurnal_flash_scenario(n_queries: int) -> ServingScenario:
    """A compressed day/night cycle with a flash crowd on the peak."""
    rng = np.random.default_rng(7)
    base = arrival_times(
        n_queries, 2_000.0, rng=rng, process="diurnal",
        period_s=12.0, amplitude=0.75,
    )
    spike = 14.0 + arrival_times(4000, 2_000.0, rng=rng, process="poisson")
    merged = np.sort(np.concatenate([base, spike]))
    queries = [
        Query(index=i, size=1, arrival_s=float(t))
        for i, t in enumerate(merged)
    ]
    return ServingScenario(queries=QuerySet(queries=queries), sla_s=SLA_S)


def make_switcher() -> SwitchController:
    accurate, fast = node_paths()
    return SwitchController(
        candidates={GPU_V100.name: [accurate, fast]},
        load_s=0.002, teardown_s=0.0005, cooldown_s=0.25,
    )


def make_fleet(n_nodes, switcher=None, autoscale=None, plane=None,
               ) -> ClusterSimulator:
    accurate, _ = node_paths()
    plan = greedy_shard(
        [1_000_000, 800_000, 700_000, 600_000, 500_000, 400_000], 16, n_nodes
    )
    return ClusterSimulator(
        StaticScheduler([accurate]), plan, router="least-loaded",
        replication=2, max_batch_size=16, batch_timeout_s=0.008,
        switch_controller=switcher, autoscale=autoscale, controlplane=plane,
        cache_bytes=4 << 20,
    )


def row(label: str, cluster) -> None:
    res = cluster.result
    cost = cluster.fleet_energy_j + cluster.node_seconds
    print(
        f"{label:24s} violations={res.violation_rate * 100:5.1f}% "
        f"node-seconds={cluster.node_seconds:7.1f} "
        f"cost={cost / 1e3:6.2f} kJ-eq"
    )


def one_knob_vs_four(scenario):
    header("1. One knob vs four (diurnal + flash crowd)")
    stacked = make_fleet(
        MAX_NODES,
        switcher=make_switcher(),
        autoscale=AutoscaleController(
            min_nodes=MIN_NODES, max_nodes=MAX_NODES,
            hi_pressure=0.75, lo_pressure=0.1, util_hi=0.9,
            patience=4, patience_down=48, cooldown_s=0.25,
        ),
    ).run(scenario)
    autopilot = make_fleet(
        MAX_NODES,
        switcher=make_switcher(),
        plane=ControlPlane(
            min_nodes=MIN_NODES, max_nodes=MAX_NODES,
            hi_pressure=0.75, lo_pressure=0.1,
            patience=4, patience_down=48, cooldown_s=0.25,
        ),
    ).run(scenario)
    row(f"static {MIN_NODES} nodes", make_fleet(MIN_NODES).run(scenario))
    row(f"static {MAX_NODES} nodes", make_fleet(MAX_NODES).run(scenario))
    row("stacked controllers", stacked)
    row(f"autopilot {MIN_NODES}..{MAX_NODES}", autopilot)
    print(
        f"{'':24s} autopilot: {len(autopilot.control_decisions)} decisions, "
        f"{autopilot.switches} switches, "
        f"{autopilot.scale_ups} joins, {autopilot.scale_downs} drains"
    )
    return autopilot


def decision_trace(autopilot) -> None:
    header("2. The decision trace (every candidate priced, one winner)")
    for decision in autopilot.control_decisions[:10]:
        print(f"  {format_decision(decision)}")


def real_deployment(n_queries: int) -> None:
    header("3. KAGGLE on HW-1 nodes (autopilot 2..4)")
    scenario = ServingScenario.flash_crowd(
        n_queries=n_queries, qps=6_000.0, sla_s=0.010, spike_factor=3.0,
    )
    cluster = run_autopilot_serving(
        KAGGLE, scenario, min_nodes=2, max_nodes=4, replication=2,
        max_batch_size=8, batch_timeout_s=0.001, patience=2,
        initial_nodes=3, cache_bytes=64 << 20,
    )
    row("autopilot 2..4", cluster)
    for decision in cluster.control_decisions[:6]:
        print(f"  {format_decision(decision)}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--queries", type=int, default=20_000)
    args = parser.parse_args()

    scenario = diurnal_flash_scenario(args.queries)
    autopilot = one_knob_vs_four(scenario)
    decision_trace(autopilot)
    real_deployment(args.queries)


if __name__ == "__main__":
    main()
