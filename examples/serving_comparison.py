"""Reproduce the Figure 10 experiment interactively: compare static
deployments, table CPU-GPU switching, and MP-Rec on both Criteo use-cases.

    python examples/serving_comparison.py [--queries 2000]
"""

import argparse

from repro.experiments.setup import run_serving_comparison
from repro.models.configs import KAGGLE, TERABYTE
from repro.serving.workload import ServingScenario

SUBSET = ("table-cpu", "table-gpu", "dhe-gpu", "hybrid-gpu", "table-switch", "mp-rec")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--queries", type=int, default=2000)
    parser.add_argument("--qps", type=float, default=1000.0)
    parser.add_argument("--sla-ms", type=float, default=10.0)
    args = parser.parse_args()

    for model in (KAGGLE, TERABYTE):
        scenario = ServingScenario.paper_default(
            n_queries=args.queries, qps=args.qps, sla_s=args.sla_ms / 1e3
        )
        print(f"\n=== {model.name} ({args.queries} queries, "
              f"{args.qps:.0f} QPS, {args.sla_ms:.0f} ms SLA) ===")
        results = run_serving_comparison(model, scenario, subset=SUBSET)
        base = results["table-cpu"].correct_prediction_throughput
        header = (
            f"{'deployment':14s} {'correct/s':>12s} {'factor':>7s} "
            f"{'accuracy':>9s} {'viol%':>6s} {'p99 ms':>7s}"
        )
        print(header)
        print("-" * len(header))
        for name, res in results.items():
            print(
                f"{name:14s} {res.correct_prediction_throughput:12,.0f} "
                f"{res.correct_prediction_throughput / base:6.2f}x "
                f"{res.mean_accuracy:8.3f}% {res.violation_rate * 100:5.1f}% "
                f"{res.p99_latency_s * 1e3:7.1f}"
            )


if __name__ == "__main__":
    main()
