"""Tour of the multi-node serving cluster: scaling, routers, fabrics,
replication, and a live failover drill.

    python examples/cluster_serving.py [--queries 4000]

Four exhibits:
  1. Scale-out sweep — the same saturating query stream on 1/2/4/8-node
     clusters; raw throughput scales near-linearly, the all-to-all
     embedding exchange eats the rest.
  2. Router comparison — round-robin vs least-loaded vs shard-locality
     routing on a thin 25 GbE fabric, where keeping hot shards local
     visibly pays.
  3. Fabric sweep — the identical cluster priced over 25 GbE, 100 GbE,
     and RDMA links.
  4. Failover drill — a node dies mid-run: with replication 2 every
     in-flight query is re-routed and served; with replication 1 the
     shards die with the node.
"""

import argparse

from repro.experiments.setup import build_cluster
from repro.hardware.topology import CLUSTER_LINKS
from repro.models.configs import KAGGLE
from repro.serving.workload import ServingScenario


def header(title: str) -> None:
    print(f"\n=== {title} ===")


def row(label: str, cluster_result) -> None:
    res = cluster_result.result
    print(
        f"{label:26s} samples/s={res.raw_throughput:12,.0f} "
        f"p99={res.p99_latency_s * 1e3:7.2f} ms "
        f"drop={res.drop_rate * 100:5.1f}%"
    )


def scale_out_sweep(scenario, batching) -> None:
    header("1. Scale-out: raw throughput, locality router, replication 2")
    base = None
    for n_nodes in (1, 2, 4, 8):
        cluster = build_cluster(
            KAGGLE, n_nodes, router="locality",
            replication=min(2, n_nodes), **batching,
        )
        result = cluster.run(scenario)
        base = base or result.result.raw_throughput
        row(
            f"{n_nodes} node(s) "
            f"(x{result.result.raw_throughput / base:.2f})",
            result,
        )


def router_comparison(scenario, batching) -> None:
    header("2. Routers on a thin fabric (8 nodes, 25 GbE, replication 2)")
    for router in ("round-robin", "least-loaded", "locality"):
        cluster = build_cluster(
            KAGGLE, 8, router=router, replication=2,
            link=CLUSTER_LINKS["eth-25g"], **batching,
        )
        row(router, cluster.run(scenario))


def fabric_sweep(scenario, batching) -> None:
    header("3. Fabrics (8 nodes, locality router, replication 2)")
    for name, link in CLUSTER_LINKS.items():
        cluster = build_cluster(
            KAGGLE, 8, router="locality", replication=2, link=link, **batching,
        )
        row(name, cluster.run(scenario))


def failover_drill(scenario, batching) -> None:
    header("4. Failover: node 1 dies mid-run (4 nodes, locality router)")
    fail_at = scenario.queries.queries[len(scenario.queries) // 2].arrival_s
    for replication in (2, 1):
        cluster = build_cluster(
            KAGGLE, 4, router="locality", replication=replication,
            fail_at=fail_at, fail_node=1, **batching,
        )
        result = cluster.run(scenario)
        row(f"replication={replication}", result)
        print(
            f"{'':26s} rerouted={result.rerouted} lost={result.lost} "
            f"edge_drops={result.edge_drops} "
            f"wasted={result.wasted_energy_j:.2f} J"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--queries", type=int, default=4000)
    args = parser.parse_args()

    scenario = ServingScenario.paper_default(
        n_queries=args.queries, qps=250_000.0
    )
    batching = dict(max_batch_size=32, batch_timeout_s=0.0005)
    scale_out_sweep(scenario, batching)
    router_comparison(scenario, batching)
    fabric_sweep(scenario, batching)
    failover_drill(scenario, batching)


if __name__ == "__main__":
    main()
