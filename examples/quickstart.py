"""Quickstart: train DLRM with each embedding representation, then let
MP-Rec plan and serve.

Runs in under a minute on a laptop — model sizes are the ``*_MINI``
configurations (real Criteo cardinalities capped at 1000 rows/table).

    python examples/quickstart.py
"""

import numpy as np

from repro import KAGGLE_MINI, Trainer, build_dlrm, make_dataset
from repro.core.offline import OfflinePlanner
from repro.core.online import MultiPathScheduler
from repro.experiments.setup import default_cache_effect, hw1_devices
from repro.core.representations import paper_configs
from repro.models.configs import KAGGLE
from repro.quality.estimator import QualityEstimator
from repro.serving.simulator import ServingSimulator
from repro.serving.workload import ServingScenario


def train_each_representation() -> None:
    print("=== 1. Training DLRM variants on synthetic Criteo-shaped data ===")
    dataset = make_dataset(KAGGLE_MINI, seed=7)
    for rep in ("table", "dhe", "select", "hybrid"):
        rng = np.random.default_rng(0)
        model = build_dlrm(KAGGLE_MINI, rep, rng, k=32, dnn=32, h=1)
        trainer = Trainer(model, dataset, lr=0.1)
        result = trainer.train(n_steps=60, batch_size=128, eval_samples=2048)
        print(
            f"  {rep:7s} loss {result.losses[0]:.4f} -> {result.final_loss:.4f}"
            f"  accuracy {result.eval_accuracy:.4f}  AUC {result.eval_auc:.4f}"
            f"  params {model.num_parameters():,}"
        )


def plan_and_serve() -> None:
    print("\n=== 2. MP-Rec offline planning on HW-1 (paper-scale configs) ===")
    estimator = QualityEstimator("kaggle")
    plan = OfflinePlanner(KAGGLE, estimator).plan(hw1_devices())
    for device_name, reps in plan.mappings.items():
        for rep in reps:
            print(
                f"  {device_name:14s} <- {rep.display:22s}"
                f" {rep.total_bytes(KAGGLE) / 1e9:6.2f} GB"
                f"  acc {plan.accuracies[rep.display]:.2f}%"
            )

    print("\n=== 3. Serving 2000 queries (10 ms SLA, 1000 QPS) ===")
    effect = default_cache_effect(KAGGLE, paper_configs(KAGGLE)["dhe"])
    paths = plan.build_paths(
        encoder_hit_rate=effect.encoder_hit_rate,
        decoder_speedup=effect.decoder_speedup,
    )
    scheduler = MultiPathScheduler(paths)
    scenario = ServingScenario.paper_default(n_queries=2000)
    result = ServingSimulator(scheduler, track_energy=False).run(scenario)
    print(f"  correct predictions/s : {result.correct_prediction_throughput:,.0f}")
    print(f"  served accuracy       : {result.mean_accuracy:.3f}%")
    print(f"  SLA violations        : {result.violation_rate * 100:.2f}%")
    print(f"  p99 latency           : {result.p99_latency_s * 1e3:.2f} ms")
    print("  path activation:")
    for label, share in result.switching_breakdown().items():
        print(f"    {label:14s} {share * 100:5.1f}%")


if __name__ == "__main__":
    train_each_representation()
    plan_and_serve()
