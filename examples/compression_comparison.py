"""Compare compressed embedding representations: DHE vs. TT-Rec vs. table.

The paper picks DHE over TT-Rec for its tunable encoder-decoder stacks
(Section 2.2). This example puts both on the same footing: Kaggle-scale
capacity/FLOPs plus a real mini-scale training comparison.

    python examples/compression_comparison.py
"""

import numpy as np

from repro.data.synthetic import SyntheticCTRDataset
from repro.embeddings.costs import dhe_bytes, dhe_flops_per_lookup, table_bytes
from repro.embeddings.ttrec import TTEmbedding, tt_bytes
from repro.models.configs import KAGGLE, ModelConfig
from repro.models.dlrm import build_dlrm
from repro.training.trainer import Trainer

MINI = ModelConfig(
    name="compress-mini",
    n_dense=8,
    cardinalities=[80, 300, 1200, 50],
    embedding_dim=8,
    bottom_mlp=[24],
    top_mlp=[24],
)


def capacity_report() -> None:
    print("=== Kaggle-scale embedding footprints (26 tables, dim 16) ===")
    dim = KAGGLE.embedding_dim
    dense = sum(table_bytes(rows, dim) for rows in KAGGLE.cardinalities)
    print(f"  dense table             {dense / 1e9:8.3f} GB")
    for rank in (4, 8, 16, 32):
        total = sum(tt_bytes(rows, dim, rank) for rows in KAGGLE.cardinalities)
        rng = np.random.default_rng(0)
        flops = TTEmbedding(10_131_227, dim, rank, rng).flops_per_lookup()
        print(
            f"  TT-Rec rank {rank:3d}        {total / 1e6:8.1f} MB"
            f"  ({dense / total:7.0f}x, {flops:,} FLOPs/lookup)"
        )
    for k, dnn, h in ((256, 128, 1), (1024, 256, 2), (2048, 480, 2)):
        total = 26 * dhe_bytes(k, dnn, h, dim)
        flops = dhe_flops_per_lookup(k, dnn, h, dim)
        print(
            f"  DHE k={k:4d} w={dnn:3d} h={h}  {total / 1e6:8.1f} MB"
            f"  ({dense / total:7.0f}x, {flops:,} FLOPs/lookup)"
        )


def training_report() -> None:
    print("\n=== Mini-scale real training (200 steps, 2 seeds) ===")
    for rep, kwargs in (
        ("table", {}),
        ("ttrec", dict(tt_rank=4)),
        ("dhe", dict(k=32, dnn=32, h=1)),
        ("hybrid", dict(k=32, dnn=32, h=1)),
    ):
        aucs = []
        for seed in (0, 1):
            rng = np.random.default_rng(seed)
            model = build_dlrm(MINI, rep, rng, **kwargs)
            dataset = SyntheticCTRDataset(MINI, seed=11, latent_dim=4)
            result = Trainer(model, dataset, lr=0.1).train(
                n_steps=200, batch_size=128, eval_samples=4000
            )
            aucs.append(result.eval_auc)
        print(f"  {rep:7s} AUC {np.mean(aucs):.4f} (+/- {np.std(aucs):.4f})")


if __name__ == "__main__":
    capacity_report()
    training_report()
