"""Tour of geo-distributed serving: follow-the-sun traffic, WAN-priced
spilling, and a region failover drill.

    python examples/geo_serving.py [--queries 600]

Three exhibits:
  1. Follow-the-sun — three regions whose diurnal peaks are staggered a
     third of a day apart serve the same global stream pinned vs
     spilling; spilling borrows the trough region's idle capacity at
     the price of metered WAN bytes.
  2. WAN link sweep — the same spill config over metro, transcontinental,
     and intercontinental links: as the round trip grows, profitable
     spills thin out and the WAN bill per shaved violation climbs.
  3. Failover drill — one region dies mid-day: with region replication 2
     every displaced query re-homes over the WAN and nothing is lost;
     with replication 1 the region's traffic dies with it.
"""

import argparse

from repro.experiments.setup import build_regions, follow_the_sun_scenario
from repro.models.configs import KAGGLE


def header(title: str) -> None:
    print(f"\n=== {title} ===")


def row(label: str, res) -> None:
    print(
        f"{label:26s} violations={res.result.violation_rate * 100:6.2f}% "
        f"p99={res.result.p99_latency_s * 1e3:7.2f} ms "
        f"spills={res.spills:4d} wan={res.wan_bytes / 1e6:7.2f} MB "
        f"cost={res.total_cost_j:8.1f} J-eq"
    )


def follow_the_sun(scenario, region_of) -> None:
    header("1. Follow-the-sun: pinned vs spill (3 regions, wan-metro)")
    for router in ("pinned", "spill"):
        sim = build_regions(KAGGLE, 3, geo_router=router)
        row(router, sim.run(scenario, region_of))


def wan_sweep(scenario, region_of) -> None:
    header("2. The same spill fleet over longer WAN links")
    for wan in ("wan-metro", "wan-transcon", "wan-intercont"):
        sim = build_regions(KAGGLE, 3, wan=wan)
        row(wan, sim.run(scenario, region_of))


def failover_drill(scenario, region_of) -> None:
    header("3. Region failover at t=25% of the day (fail region 1)")
    fail_at = scenario.queries[len(scenario.queries) // 4].arrival_s
    for repl in (2, 1):
        sim = build_regions(
            KAGGLE, 3, region_replication=repl,
            fail_region=1, fail_at=fail_at,
        )
        res = sim.run(scenario, region_of)
        row(f"replication {repl}", res)
        print(
            f"{'':26s} re-homed={res.rehomed} rerouted={res.rerouted} "
            f"lost={res.lost} edge-drops={res.edge_drops}"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--queries", type=int, default=600,
                        help="queries per region")
    args = parser.parse_args()
    scenario, region_of = follow_the_sun_scenario(
        n_regions=3, n_queries=args.queries, qps=1500.0, seed=42
    )
    print(f"global stream: {len(scenario.queries)} queries over 3 regions, "
          f"SLA {scenario.sla_s * 1e3:.0f} ms")
    follow_the_sun(scenario, region_of)
    wan_sweep(scenario, region_of)
    failover_drill(scenario, region_of)


if __name__ == "__main__":
    main()
