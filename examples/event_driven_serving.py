"""Tour of the event-driven serving engine: micro-batching, shed
policies, streaming metrics, and the non-stationary workload generators.

    python examples/event_driven_serving.py [--queries 5000]

Four exhibits:
  1. Batching sweep — coalescing queries amortizes the per-pass base
     latency, so throughput rises and tail latency falls until batching
     delay eats the SLA budget.
  2. Shed policies on an overloaded deployment — deadline-aware admission
     keeps the backlog from forming and protects compliant throughput.
  3. Traffic shapes — the same deployment under Poisson, diurnal, bursty
     (MMPP), and flash-crowd arrivals.
  4. Multi-tenant mix + streaming metrics — two tenants with distinct
     SLAs, aggregated in constant memory.
"""

import argparse

from repro.experiments.setup import build_schedulers
from repro.models.configs import KAGGLE
from repro.serving.simulator import ServingSimulator
from repro.serving.workload import ServingScenario, TenantSpec


def header(title: str) -> None:
    print(f"\n=== {title} ===")


def row(label: str, res) -> None:
    print(
        f"{label:22s} correct/s={res.correct_prediction_throughput:10,.0f} "
        f"viol={res.violation_rate * 100:5.1f}% "
        f"drop={res.drop_rate * 100:5.1f}% "
        f"p99={res.p99_latency_s * 1e3:7.2f} ms"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--queries", type=int, default=5000)
    parser.add_argument("--qps", type=float, default=2000.0)
    args = parser.parse_args()

    schedulers = build_schedulers(KAGGLE)
    mp_rec = schedulers["mp-rec"]
    dhe_gpu = schedulers["dhe-gpu"]

    header("1. micro-batching sweep (mp-rec)")
    scenario = ServingScenario.paper_default(
        n_queries=args.queries, qps=args.qps, seed=0
    )
    for max_batch, timeout_ms in ((1, 0.0), (4, 1.0), (16, 2.0), (64, 4.0)):
        sim = ServingSimulator(
            mp_rec, track_energy=False,
            max_batch_size=max_batch, batch_timeout_s=timeout_ms / 1e3,
        )
        row(f"batch<={max_batch} ({timeout_ms:.0f} ms)", sim.run(scenario))

    header("2. shed policies on an overloaded static deployment (dhe-gpu)")
    overload = ServingScenario.paper_default(
        n_queries=args.queries, qps=400.0, sla_s=0.010, seed=71
    )
    for policy in ("none", "drop-late", "deadline-aware"):
        sim = ServingSimulator(dhe_gpu, track_energy=False, shed_policy=policy)
        row(policy, sim.run(overload))

    header("3. traffic shapes (mp-rec, drop-late)")
    for process in ("poisson", "diurnal", "mmpp", "flash-crowd"):
        shaped = ServingScenario.with_process(
            process, n_queries=args.queries, qps=args.qps, seed=5
        )
        sim = ServingSimulator(
            mp_rec, track_energy=False, shed_policy="drop-late",
            max_batch_size=16, batch_timeout_s=0.002,
        )
        row(process, sim.run(shaped))

    header("4. multi-tenant mix, streaming aggregation (constant memory)")
    mixed = ServingScenario.multi_tenant(
        [
            TenantSpec(
                name="feed", n_queries=args.queries, qps=args.qps,
                sla_s=0.010, seed=1,
            ),
            TenantSpec(
                name="ads", n_queries=args.queries // 2, qps=args.qps / 2,
                sla_s=0.025, mean_size=64.0, process="mmpp", seed=2,
            ),
        ]
    )
    sim = ServingSimulator(
        mp_rec, track_energy=False, shed_policy="deadline-aware",
        max_batch_size=16, batch_timeout_s=0.002,
    )
    streamed = sim.run_streaming(mixed)
    row("feed+ads (streamed)", streamed)
    print("per-path mix:", {
        label: f"{share:.0%}"
        for label, share in streamed.switching_breakdown().items()
    })


if __name__ == "__main__":
    main()
