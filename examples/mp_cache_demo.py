"""MP-Cache on real numpy execution: watch the two tiers close the gap
between an encoder-decoder stack and a table lookup (Figure 16).

    python examples/mp_cache_demo.py
"""

import time

import numpy as np

from repro.core.cached_inference import CachedDHE
from repro.core.mp_cache import DecoderCentroidCache, EncoderCache
from repro.data.zipf import ZipfSampler
from repro.embeddings.dhe import DHEEmbedding
from repro.nn.layers import EmbeddingTable

DIM = 16
N_IDS = 500_000
BATCHES = [np.random.default_rng(i).integers(0, N_IDS, 512) for i in range(10)]


def timed(label: str, fn, stream) -> float:
    start = time.perf_counter()
    for ids in stream:
        fn(ids)
    elapsed = time.perf_counter() - start
    print(f"  {label:34s} {elapsed * 1e3:8.1f} ms")
    return elapsed


def main() -> None:
    rng = np.random.default_rng(0)
    sampler = ZipfSampler(N_IDS, alpha=1.15, seed=1)
    stream = [sampler.sample(512) for _ in range(30)]

    table = EmbeddingTable(N_IDS, DIM, rng)
    dhe = DHEEmbedding(dim=DIM, k=256, dnn=256, h=2, rng=rng)

    print("Uncached paths:")
    t_table = timed("table lookup", table, stream)
    t_dhe = timed("DHE encoder-decoder stack", dhe, stream)
    print(f"  -> stack is {t_dhe / t_table:.1f}x slower than the table\n")

    print("MP-Cache tiers:")
    for label, enc, dec in (
        ("encoder cache only (2 MB)", 2 * 1024 * 1024, None),
        ("decoder centroids only (N=256)", None, 256),
        ("both tiers", 2 * 1024 * 1024, 256),
    ):
        cached = CachedDHE(
            dhe,
            encoder_cache=EncoderCache(enc, DIM) if enc else None,
            decoder_cache=DecoderCentroidCache(dec, seed=0) if dec else None,
        )
        cached.warm(sampler, profile_samples=2048)
        t = timed(label, cached.generate, stream)
        err = cached.approximation_error(sampler.sample(512))
        print(
            f"    speedup {t_dhe / t:4.1f}x, gap to table "
            f"{t / t_table:4.1f}x, rel. error {err:.4f}"
        )


if __name__ == "__main__":
    main()
